#include "gnn/steiner_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <unistd.h>

#include "db/bytes.hpp"
#include "db/container.hpp"
#include "gnn/adam.hpp"
#include "netlist/netlist.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {

namespace {

/// Stable ordering key for the process-wide pretrained cache.
std::tuple<int, std::uint64_t, int, int, double> config_key(const SteinerPredictorConfig& c) {
  return {c.hidden, c.seed, c.train_nets, c.train_steps, c.learning_rate};
}

/// Tag stored alongside cached weights; a mismatch (stale file from an older
/// config) falls through to retraining.
std::string cache_tag(const SteinerPredictorConfig& c) {
  char tag[128];
  std::snprintf(tag, sizeof(tag), "h=%d seed=%llu nets=%d steps=%d lr=%g", c.hidden,
                static_cast<unsigned long long>(c.seed), c.train_nets, c.train_steps,
                c.learning_rate);
  return tag;
}

constexpr const char* kWeightCachePath = "tsteiner_steiner_cache.bin";

std::optional<SteinerPredictor> load_cached_weights(const SteinerPredictorConfig& config) {
  db::DbReader reader;
  if (!reader.open(kWeightCachePath)) return std::nullopt;
  const db::ChunkInfo* chunk = reader.find(db::kChunkSteinerModel);
  if (chunk == nullptr) return std::nullopt;
  std::string tag;
  auto decoded = decode_steiner_predictor_payload_any(
      reader.payload(*chunk), static_cast<std::size_t>(chunk->size), &tag);
  if (!decoded || tag != cache_tag(config) || !(decoded->config() == config)) {
    return std::nullopt;
  }
  return decoded;
}

void save_cached_weights(const SteinerPredictor& predictor) {
  // Write-to-temp + rename keeps concurrent test binaries from ever seeing a
  // half-written cache (and DbReader's CRCs catch anything that slips by).
  char tmp[64];
  std::snprintf(tmp, sizeof(tmp), "%s.tmp.%d", kWeightCachePath, static_cast<int>(getpid()));
  db::DbWriter writer;
  const bool ok =
      writer.open(tmp) &&
      writer.add_chunk(db::kChunkSteinerModel,
                       encode_steiner_predictor_payload(predictor, cache_tag(predictor.config()))) &&
      writer.finish();
  if (!ok || std::rename(tmp, kWeightCachePath) != 0) std::remove(tmp);
}

}  // namespace

SteinerPredictor::SteinerPredictor(const SteinerPredictorConfig& config) : cfg_(config) {
  if (cfg_.hidden < 1 || cfg_.hidden > 4096) {
    throw std::runtime_error("SteinerPredictor: hidden width out of range");
  }
  Rng rng(Rng::mix(cfg_.seed, 0x5744u));
  const auto h = static_cast<std::size_t>(cfg_.hidden);
  const auto f = static_cast<std::size_t>(kHananFeatures);
  params_.assign(kNumParams, Tensor{});
  params_[kW1] = Tensor::randn(rng, f, h, 1.0 / std::sqrt(static_cast<double>(f)));
  params_[kB1] = Tensor::zeros(1, h);
  params_[kW2] = Tensor::randn(rng, 2 * h, h, 1.0 / std::sqrt(static_cast<double>(2 * h)));
  params_[kB2] = Tensor::zeros(1, h);
  params_[kW3] = Tensor::randn(rng, h, 1, 1.0 / std::sqrt(static_cast<double>(h)));
  params_[kB3] = Tensor::zeros(1, 1);
}

SteinerPredictor::Bound SteinerPredictor::bind(Tape& tape, bool requires_grad) const {
  Bound b;
  b.handles.reserve(params_.size());
  for (const Tensor& p : params_) b.handles.push_back(tape.leaf(p, requires_grad));
  return b;
}

Value SteinerPredictor::forward_logits(Tape& tape, const HananBatch& batch,
                                       const Bound& bound) const {
  const std::size_t rows = batch.rows();
  const auto h = static_cast<std::size_t>(cfg_.hidden);

  Tensor x(rows, static_cast<std::size_t>(kHananFeatures));
  x.data() = batch.features;
  const Value xv = tape.leaf(std::move(x));

  // Validity mask as an h-wide row per batch row, materialized by gathering
  // from a constant 2 x h {zeros; ones} table — padding rows multiply h1 to
  // exact +0.0 before any per-slot reduction.
  Tensor mask_table(2, h, 0.0);
  for (std::size_t c = 0; c < h; ++c) mask_table.at(1, c) = 1.0;
  std::vector<int> mask_idx(rows);
  for (std::size_t r = 0; r < rows; ++r) mask_idx[r] = batch.valid[r] ? 1 : 0;
  const Value mask = tape.gather_rows(tape.leaf(std::move(mask_table)), std::move(mask_idx));

  const Value h1 = tape.relu(tape.add(tape.matmul(xv, bound.handles[kW1]), bound.handles[kB1]));
  const Value h1m = tape.mul(h1, mask);

  // Net context: masked mean over each slot's real rows. The inverse-count
  // table is a leaf, so the division is an elementwise mul (1/count is a
  // pure function of the packing, identical in any batch composition).
  const Value pooled = tape.segment_sum(h1m, batch.segments, batch.num_slots());
  Tensor inv(batch.num_slots(), h, 0.0);
  for (std::size_t s = 0; s < batch.num_slots(); ++s) {
    const int count = batch.counts[static_cast<std::size_t>(batch.slots[s])];
    const double ic = 1.0 / static_cast<double>(std::max(count, 1));
    for (std::size_t c = 0; c < h; ++c) inv.at(s, c) = ic;
  }
  const Value mean = tape.mul(pooled, tape.leaf(std::move(inv)));
  const Value context = tape.gather_rows(mean, batch.segments);

  const Value h2in = tape.concat_cols({h1m, context});
  const Value h2 = tape.relu(tape.add(tape.matmul(h2in, bound.handles[kW2]), bound.handles[kB2]));
  return tape.add(tape.matmul(h2, bound.handles[kW3]), bound.handles[kB3]);
}

std::vector<double> SteinerPredictor::predict(const HananBatch& batch) const {
  if (batch.rows() == 0) return {};
  Tape tape;
  const Bound bound = bind(tape, /*requires_grad=*/false);
  const Value probs = tape.sigmoid(forward_logits(tape, batch, bound));
  return tape.value(probs).data();
}

void SteinerPredictor::pretrain() {
  // Synthetic corpus: seeded random nets in the 5..10-pin range (smaller
  // nets never reach the predictor), labeled by the exact iterated-1-Steiner
  // construction. Every Steiner point the exact construction picks lies on
  // the pin Hanan grid (candidates are (x_i, y_j) cross products, closed
  // under iteration), so labels match packed candidates by exact position.
  BatchBuildOptions pack_opts;
  std::vector<std::vector<PointF>> pin_sets;
  pin_sets.reserve(static_cast<std::size_t>(std::max(cfg_.train_nets, 0)));
  for (int n = 0; n < cfg_.train_nets; ++n) {
    Rng rng(Rng::mix(cfg_.seed, 0x6e657400ull + static_cast<std::uint64_t>(n)));
    const auto pins = static_cast<std::size_t>(rng.uniform_int(5, 10));
    std::vector<PointF> net;
    net.reserve(pins);
    for (std::size_t p = 0; p < pins; ++p) {
      net.push_back({static_cast<double>(rng.uniform_int(0, 480)),
                     static_cast<double>(rng.uniform_int(0, 480))});
    }
    pin_sets.push_back(std::move(net));
  }
  const HananBatch batch = pack_hanan_batch(pin_sets, pack_opts);
  if (batch.rows() == 0) return;

  Tensor target(batch.rows(), 1, 0.0);
  Tensor weight(batch.rows(), 1, 0.0);
  // Positive rows (the exact construction picked this candidate) are ~6% of
  // the corpus; without reweighting, sigmoid + per-row loss collapses to the
  // all-zero prediction. Upweight positives so both classes pull equally
  // hard, and keep padding rows at weight 0.
  constexpr double kPosWeight = 4.0;
  const RsmtOptions exact;
  for (std::size_t s = 0; s < batch.num_slots(); ++s) {
    const auto net = static_cast<std::size_t>(batch.slots[s]);
    const SteinerTree tree = build_rsmt_points(pin_sets[net], exact);
    const std::size_t base = s * static_cast<std::size_t>(batch.h_max);
    const auto count = static_cast<std::size_t>(batch.counts[net]);
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t r = base + j;
      weight.at(r, 0) = 1.0;
      for (const SteinerNode& node : tree.nodes) {
        if (node.is_steiner() && node.pos.x == batch.points[r].x &&
            node.pos.y == batch.points[r].y) {
          target.at(r, 0) = 1.0;
          weight.at(r, 0) = kPosWeight;
          break;
        }
      }
    }
  }

  Adam adam(&params_, cfg_.learning_rate);
  for (int step = 0; step < cfg_.train_steps; ++step) {
    Tape tape;
    const Bound bound = bind(tape, /*requires_grad=*/true);
    const Value logits = forward_logits(tape, batch, bound);
    // Class-weighted binary cross-entropy, built from the logits:
    //   bce(l, y) = softplus(l) - l*y,  d/dl = sigmoid(l) - y,
    // so the gradient never vanishes through a saturated sigmoid (the MSE
    // form dies via the p(1-p) factor on an imbalanced corpus). Padding
    // rows carry weight 0 and contribute exactly nothing.
    const Value per_row = tape.sub(tape.softplus(logits), tape.mul(logits, tape.leaf(target)));
    const Value loss = tape.mean_all(tape.mul(per_row, tape.leaf(weight)));
    tape.backward(loss);
    std::vector<Tensor> grads;
    grads.reserve(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) grads.push_back(tape.grad(bound.handles[i]));
    adam.step(grads);
  }
}

std::shared_ptr<const SteinerPredictor> SteinerPredictor::shared_pretrained(
    const SteinerPredictorConfig& config) {
  static std::mutex mu;
  static std::map<std::tuple<int, std::uint64_t, int, int, double>,
                  std::shared_ptr<const SteinerPredictor>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(config_key(config));
  if (it != cache.end()) return it->second;
  const bool use_disk = std::getenv("TSTEINER_NO_CACHE") == nullptr;
  if (use_disk) {
    if (auto cached = load_cached_weights(config)) {
      auto shared = std::make_shared<const SteinerPredictor>(std::move(*cached));
      cache.emplace(config_key(config), shared);
      return shared;
    }
  }
  auto fresh = std::make_shared<SteinerPredictor>(config);
  fresh->pretrain();
  if (use_disk) save_cached_weights(*fresh);
  std::shared_ptr<const SteinerPredictor> shared = fresh;
  cache.emplace(config_key(config), shared);
  return shared;
}

std::vector<std::uint8_t> encode_steiner_predictor_payload(const SteinerPredictor& predictor,
                                                           const std::string& tag) {
  db::ByteWriter w;
  w.str(tag);
  const SteinerPredictorConfig& c = predictor.config();
  w.i32(c.hidden);
  w.u64(c.seed);
  w.i32(c.train_nets);
  w.i32(c.train_steps);
  w.f64(c.learning_rate);
  const std::vector<Tensor>& params = predictor.parameters();
  w.u32(static_cast<std::uint32_t>(params.size()));
  for (const Tensor& p : params) {
    w.u64(p.rows());
    w.u64(p.cols());
    w.f64_vec(p.data());
  }
  return w.take();
}

std::optional<SteinerPredictor> decode_steiner_predictor_payload_any(const std::uint8_t* data,
                                                                     std::size_t size,
                                                                     std::string* tag_out) {
  db::ByteReader r(data, size);
  const std::string tag = r.str();
  SteinerPredictorConfig c;
  c.hidden = r.i32();
  c.seed = r.u64();
  c.train_nets = r.i32();
  c.train_steps = r.i32();
  c.learning_rate = r.f64();
  if (!r.ok()) return std::nullopt;
  if (c.hidden < 1 || c.hidden > 4096) return std::nullopt;
  if (c.train_nets < 0 || c.train_nets > (1 << 20)) return std::nullopt;
  if (c.train_steps < 0 || c.train_steps > (1 << 20)) return std::nullopt;

  SteinerPredictor predictor(c);
  const std::uint32_t count = r.u32();
  if (!r.ok() || count != predictor.parameters().size()) return std::nullopt;
  for (Tensor& p : predictor.parameters()) {
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    std::vector<double> values = r.f64_vec();
    if (!r.ok()) return std::nullopt;
    if (rows != p.rows() || cols != p.cols() || values.size() != p.size()) return std::nullopt;
    p.data() = std::move(values);
  }
  if (!r.done()) return std::nullopt;
  if (tag_out != nullptr) *tag_out = tag;
  return predictor;
}

std::vector<SteinerTree> build_batched_trees(const std::vector<std::vector<PointF>>& pin_sets,
                                             const SteinerPredictor& predictor,
                                             const BatchBuildOptions& options,
                                             BatchBuildStats* stats,
                                             std::vector<std::uint8_t>* used_fallback) {
  const HananBatch batch = pack_hanan_batch(pin_sets, options);
  const std::vector<double> probs = predictor.predict(batch);
  return stitch_batch(pin_sets, batch, probs, options, stats, used_fallback);
}

SteinerForest build_forest_batched(const Design& design, const SteinerPredictor& predictor,
                                   const BatchBuildOptions& options, BatchBuildStats* stats,
                                   std::vector<std::uint8_t>* used_fallback) {
  std::vector<int> net_ids;
  const std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(design, &net_ids);

  SteinerForest forest;
  forest.net_to_tree.assign(design.nets().size(), -1);
  for (std::size_t i = 0; i < net_ids.size(); ++i) {
    forest.net_to_tree[static_cast<std::size_t>(net_ids[i])] = static_cast<int>(i);
  }
  forest.trees = build_batched_trees(pin_sets, predictor, options, stats, used_fallback);

  // The point-set layer stamps pin-node `pin` fields with pin-set indices;
  // translate to design pin ids (same convention as build_rsmt).
  for (std::size_t i = 0; i < forest.trees.size(); ++i) {
    SteinerTree& tree = forest.trees[i];
    tree.net = net_ids[i];
    const Net& net = design.net(net_ids[i]);
    for (SteinerNode& n : tree.nodes) {
      if (n.is_steiner()) continue;
      n.pin = n.pin == 0 ? net.driver_pin : net.sink_pins[static_cast<std::size_t>(n.pin) - 1];
    }
  }
  forest.build_movable_index();
  return forest;
}

std::vector<double> estimate_wirelengths(const std::vector<std::vector<PointF>>& pin_sets,
                                         const SteinerPredictor& predictor,
                                         const BatchBuildOptions& options) {
  const std::vector<SteinerTree> trees = build_batched_trees(pin_sets, predictor, options);
  std::vector<double> wl(trees.size(), 0.0);
  for (std::size_t i = 0; i < trees.size(); ++i) wl[i] = trees[i].wirelength();
  return wl;
}

SteinerForest build_initial_forest(const Design& design, const SteinerBuildOptions& options,
                                   const RsmtOptions& rsmt, BatchBuildStats* stats) {
  if (options.mode == SteinerBuildMode::kPerNet) {
    return build_forest(design, rsmt);
  }
  BatchBuildOptions batch = options.batch;
  batch.fallback = rsmt;
  batch.threads = rsmt.threads;
  const std::shared_ptr<const SteinerPredictor> predictor =
      SteinerPredictor::shared_pretrained(options.predictor);
  return build_forest_batched(design, *predictor, batch, stats);
}

}  // namespace tsteiner
