// Customized sign-off timing evaluation model (Section III-A, Fig. 3).
//
// Two-stage message passing, implemented on the autodiff tape so the same
// forward graph yields both arrival-time predictions and, via backward(),
// gradients w.r.t. the Steiner coordinate leaves:
//
//  1. Steiner-graph stage — three iterations of bidirectional propagation:
//     *broadcast* moves information from each net's driver toward its sinks
//     along the tree edges (messages carry the edge length, a differentiable
//     function of Steiner positions); *reduce* sends sink states back to the
//     driver along the net edges. Exact driver->sink path lengths are also
//     accumulated level-by-level as tape values.
//  2. Netlist-graph stage — timing-engine-style topological propagation
//     ([13]): per net arc a learned net delay (from the fused Steiner
//     context) and per cell arc a learned, load-dependent cell delay feed a
//     max-reduction per output pin, producing arrival times for all pins.
//
// Predictions are in clock-period-normalized units.
#pragma once

#include <vector>

#include "autodiff/tape.hpp"
#include "gnn/graph_cache.hpp"
#include "util/rng.hpp"

namespace tsteiner {

struct GnnConfig {
  int hidden = 12;        ///< Steiner-graph hidden width
  int type_embed = 6;     ///< cell-type embedding width
  int delay_hidden = 16;  ///< width of the delay-head MLPs
  int steiner_iters = 3;  ///< paper: "in practice we set three iterations"
  /// Soft-abs smoothing radius (DBU) for edge lengths; makes WL-optimal
  /// Steiner corners flat so the refinement gradient carries timing signal
  /// instead of wirelength-kink noise.
  double soft_abs_delta = 4.0;
  /// Anchor delay heads on closed-form physics (Elmore / intrinsic + R*C)
  /// with bounded learned corrections. Disabling reverts to free-form
  /// softplus MLP heads — trains to similar R^2 but produces refinement
  /// gradients that exploit model misfit (see bench_ablation_anchor).
  bool physics_anchor = true;
  std::uint64_t seed = 42;
};

class TimingGnn {
 public:
  TimingGnn(const GnnConfig& config, int num_cell_types);

  /// Bind every parameter tensor as a tape leaf (requires_grad).
  struct Bound {
    std::vector<Value> handles;
  };
  Bound bind(Tape& tape) const;

  /// Forward pass. `xs`/`ys` are (num_movable x 1) leaves with absolute
  /// Steiner coordinates in DBU, aligned with the forest movable index that
  /// the cache was built from. Returns arrival per pin (num_pins x 1),
  /// normalized by the clock period.
  ///
  /// The tape may belong to a TapeProgram: bind() bakes the parameter values
  /// at record time, and everything forward() records — including the
  /// per-level index assembly done here on the host — replays without being
  /// re-executed, so a retained program (tsteiner::GradientEvaluator) pays
  /// this construction cost exactly once per (design, forest-topology).
  Value forward(Tape& tape, const GraphCache& g, const Bound& bound, Value xs,
                Value ys) const;

  std::vector<Tensor>& parameters() { return params_; }
  const std::vector<Tensor>& parameters() const { return params_; }

  /// Read parameter gradients off a tape after backward(); accumulates into
  /// `grads` (same shapes as parameters()).
  void accumulate_param_grads(const Tape& tape, const Bound& bound,
                              std::vector<Tensor>& grads) const;

  const GnnConfig& config() const { return cfg_; }

 private:
  enum ParamId : std::size_t {
    kWIn, kBIn,                    // snode feature embedding
    kWB, kBB, kWU1, kWU2, kBU,     // broadcast message + update
    kWR, kBR, kWU3, kWU4, kBU2,    // reduce message + update
    kTypeEmb,                      // cell-type embeddings
    kWC1, kBC1, kWC2, kBC2,        // cell-delay head (multiplicative corr.)
    kWN1, kBN1, kWN2, kBN2,        // net-delay head (multiplicative corr.)
    kWN3, kBN3,                    // net-delay additive head (quantization)
    kWS1, kBS1, kWS2, kBS2,        // startpoint (CK->Q) head
    kNumParams
  };

  GnnConfig cfg_;
  std::vector<Tensor> params_;
};

}  // namespace tsteiner
