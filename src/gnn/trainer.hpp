// Training / evaluation driver for the sign-off timing evaluator.
//
// Samples pair a (design, forest-topology) graph cache with one Steiner
// coordinate assignment and the sign-off arrival-time labels produced by the
// golden flow (GR -> DR -> RC -> STA) for exactly those coordinates. The
// trainer fits the model across designs (paper: 6 train / 4 test) with MSE
// on clock-normalized arrivals; evaluation reports the Table-III R^2 scores
// (`arrival-all` over every pin, `arrival-ends` over endpoints only).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gnn/adam.hpp"
#include "gnn/model.hpp"

namespace tsteiner {

struct TrainingSample {
  std::string design_name;
  std::shared_ptr<const GraphCache> cache;
  std::vector<double> xs, ys;           ///< movable Steiner coordinates (DBU)
  std::vector<double> arrival_label;    ///< sign-off arrival per pin (ns)
  std::vector<int> endpoint_pins;
};

struct TrainOptions {
  int epochs = 60;
  double lr = 5e-4;         ///< paper's learning rate
  double grad_clip = 5.0;   ///< max-norm clip per tensor
  /// Extra MSE weight on endpoint pins: WNS/TNS are endpoint statistics, so
  /// their arrivals matter more than interior pins'.
  double endpoint_loss_weight = 3.0;
  std::uint64_t seed = 99;
};

struct EvalMetrics {
  double r2_all = 0.0;   ///< arrival-time R^2 over all pins
  double r2_ends = 0.0;  ///< arrival-time R^2 over endpoints only
};

class Trainer {
 public:
  Trainer(TimingGnn* model, const TrainOptions& options);

  /// One pass over the samples (shuffled); returns the mean loss.
  double train_epoch(std::span<TrainingSample> samples);

  /// Run `epochs` passes; returns the final epoch's mean loss.
  double fit(std::span<TrainingSample> samples);

  /// Predicted sign-off arrival (ns) per pin.
  std::vector<double> predict(const TrainingSample& sample) const;

  EvalMetrics evaluate(const TrainingSample& sample) const;

 private:
  TimingGnn* model_;
  TrainOptions opts_;
  Adam adam_;
  Rng rng_;
  /// Largest tape seen so far; every fresh tape reserves this up front so
  /// per-sample recording stops paying node-vector reallocation churn.
  mutable std::size_t tape_nodes_hint_ = 0;
};

}  // namespace tsteiner
