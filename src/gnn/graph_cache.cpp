#include "gnn/graph_cache.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_map>

namespace tsteiner {

std::shared_ptr<const GraphCache> build_graph_cache(const Design& design,
                                                    const SteinerForest& forest) {
  auto cache = std::make_shared<GraphCache>();
  GraphCache& g = *cache;

  g.num_pins = static_cast<int>(design.pins().size());
  g.num_trees = static_cast<int>(forest.trees.size());
  g.die_w = std::max<double>(1.0, static_cast<double>(design.die().width()));
  g.die_h = std::max<double>(1.0, static_cast<double>(design.die().height()));
  g.clock = std::max(1e-9, design.clock_period());
  g.wire_res = design.library().wire_res_kohm_per_dbu();
  g.wire_cap = design.library().wire_cap_pf_per_dbu();

  // ---- snode flattening ----------------------------------------------------
  std::vector<int> tree_node_base(forest.trees.size() + 1, 0);
  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    tree_node_base[t + 1] =
        tree_node_base[t] + static_cast<int>(forest.trees[t].nodes.size());
  }
  g.num_snodes = tree_node_base.back();
  g.base_x.assign(static_cast<std::size_t>(g.num_snodes), 0.0);
  g.base_y.assign(static_cast<std::size_t>(g.num_snodes), 0.0);
  g.feat_is_steiner.assign(static_cast<std::size_t>(g.num_snodes), 0.0);
  g.feat_is_driver.assign(static_cast<std::size_t>(g.num_snodes), 0.0);
  g.feat_is_sink.assign(static_cast<std::size_t>(g.num_snodes), 0.0);
  g.feat_degree.assign(static_cast<std::size_t>(g.num_snodes), 0.0);
  g.snode_pin_cap.assign(static_cast<std::size_t>(g.num_snodes), 0.0);
  g.pin_snode.assign(static_cast<std::size_t>(g.num_pins), -1);
  g.tree_driver_snode.assign(forest.trees.size(), -1);

  auto snode_of = [&](int tree, int node) {
    return tree_node_base[static_cast<std::size_t>(tree)] + node;
  };

  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    const SteinerTree& tree = forest.trees[t];
    for (std::size_t n = 0; n < tree.nodes.size(); ++n) {
      const SteinerNode& node = tree.nodes[n];
      const auto s = static_cast<std::size_t>(snode_of(static_cast<int>(t), static_cast<int>(n)));
      if (node.is_steiner()) {
        g.feat_is_steiner[s] = 1.0;
        // base stays zero; coordinates come from the movable leaves
      } else {
        const PointI pos = design.pin_position(node.pin);
        g.base_x[s] = static_cast<double>(pos.x);
        g.base_y[s] = static_cast<double>(pos.y);
        g.pin_snode[static_cast<std::size_t>(node.pin)] = static_cast<int>(s);
        if (static_cast<int>(n) == tree.driver_node) {
          g.feat_is_driver[s] = 1.0;
          g.tree_driver_snode[t] = static_cast<int>(s);
        } else {
          g.feat_is_sink[s] = 1.0;
          g.snode_pin_cap[s] = design.pin_cap(node.pin);
        }
      }
    }
    const auto adj = tree.adjacency();
    for (std::size_t n = 0; n < tree.nodes.size(); ++n) {
      g.feat_degree[static_cast<std::size_t>(snode_of(static_cast<int>(t), static_cast<int>(n)))] =
          static_cast<double>(adj[n].size()) / 4.0;
    }
  }

  g.movable_to_snode.resize(forest.movable().size());
  for (std::size_t m = 0; m < forest.movable().size(); ++m) {
    const MovableRef& r = forest.movable()[m];
    g.movable_to_snode[m] = snode_of(r.tree, r.node);
  }

  // ---- directed tree edges by depth level -----------------------------------
  struct DepthEdge {
    int depth, pa, ch, tree;
  };
  std::vector<DepthEdge> dedges;
  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    const SteinerTree& tree = forest.trees[t];
    const auto parent = tree.parents_from_driver();
    // depth via BFS order
    std::vector<int> depth(tree.nodes.size(), 0);
    const auto adj = tree.adjacency();
    std::queue<int> q;
    q.push(tree.driver_node);
    std::vector<char> seen(tree.nodes.size(), 0);
    seen[static_cast<std::size_t>(tree.driver_node)] = 1;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int v : adj[static_cast<std::size_t>(u)]) {
        if (seen[static_cast<std::size_t>(v)]) continue;
        seen[static_cast<std::size_t>(v)] = 1;
        depth[static_cast<std::size_t>(v)] = depth[static_cast<std::size_t>(u)] + 1;
        dedges.push_back({depth[static_cast<std::size_t>(v)],
                          snode_of(static_cast<int>(t), u), snode_of(static_cast<int>(t), v),
                          static_cast<int>(t)});
        q.push(v);
      }
    }
    // Reduce edges (net edges in the Steiner graph): sink -> driver.
    const Net& net = design.net(tree.net);
    for (int sp : net.sink_pins) {
      int node_idx = -1;
      for (std::size_t n = 0; n < tree.nodes.size(); ++n) {
        if (tree.nodes[n].pin == sp) {
          node_idx = static_cast<int>(n);
          break;
        }
      }
      if (node_idx < 0) throw std::runtime_error("sink not found in tree");
      g.sink_snode.push_back(snode_of(static_cast<int>(t), node_idx));
      g.sink_driver_snode.push_back(snode_of(static_cast<int>(t), tree.driver_node));
      g.sink_tree.push_back(static_cast<int>(t));
    }
  }
  std::stable_sort(dedges.begin(), dedges.end(),
                   [](const DepthEdge& a, const DepthEdge& b) { return a.depth < b.depth; });
  int max_depth = 0;
  for (const DepthEdge& e : dedges) max_depth = std::max(max_depth, e.depth);
  g.level_off.assign(static_cast<std::size_t>(max_depth) + 2, 0);
  for (const DepthEdge& e : dedges) ++g.level_off[static_cast<std::size_t>(e.depth) + 1];
  for (std::size_t l = 1; l < g.level_off.size(); ++l) g.level_off[l] += g.level_off[l - 1];
  g.edge_pa.reserve(dedges.size());
  for (const DepthEdge& e : dedges) {
    g.edge_pa.push_back(e.pa);
    g.edge_ch.push_back(e.ch);
    g.edge_tree.push_back(e.tree);
  }

  // ---- per-net constants -----------------------------------------------------
  g.net_tree = forest.net_to_tree;
  g.net_sink_cap.assign(design.nets().size(), 0.0);
  g.net_drive_res.assign(design.nets().size(), 1.0);
  for (const Net& n : design.nets()) {
    double cap = 0.0;
    for (int s : n.sink_pins) cap += design.pin_cap(s);
    g.net_sink_cap[static_cast<std::size_t>(n.id)] = cap;
    const Pin& drv = design.pin(n.driver_pin);
    g.net_drive_res[static_cast<std::size_t>(n.id)] =
        drv.cell >= 0 ? design.cell_type(drv.cell).drive_res_kohm : 0.5;
  }

  // ---- netlist arcs grouped by level -----------------------------------------
  const std::vector<int> level = design.pin_levels();
  int max_pin_level = 0;
  for (int l : level) max_pin_level = std::max(max_pin_level, l);
  g.num_levels = max_pin_level + 1;

  std::vector<std::vector<GraphCache::NetArc>> net_by_level(
      static_cast<std::size_t>(g.num_levels));
  for (const Net& n : design.nets()) {
    const int dl = level[static_cast<std::size_t>(n.driver_pin)];
    for (int sp : n.sink_pins) {
      net_by_level[static_cast<std::size_t>(dl)].push_back({n.driver_pin, sp, n.id});
    }
  }
  std::vector<std::vector<GraphCache::CellArc>> cell_by_level(
      static_cast<std::size_t>(g.num_levels) + 1);
  for (const Cell& c : design.cells()) {
    if (design.is_register_cell(c.id)) continue;
    const int ol = level[static_cast<std::size_t>(c.output_pin)];
    const int out_net = design.pin(c.output_pin).net;
    for (int ip : c.input_pins) {
      cell_by_level[static_cast<std::size_t>(ol)].push_back({ip, c.output_pin, c.type, out_net});
    }
  }
  g.net_arc_off.assign(static_cast<std::size_t>(g.num_levels) + 1, 0);
  for (int l = 0; l < g.num_levels; ++l) {
    g.net_arc_off[static_cast<std::size_t>(l) + 1] =
        g.net_arc_off[static_cast<std::size_t>(l)] +
        static_cast<int>(net_by_level[static_cast<std::size_t>(l)].size());
    for (const auto& a : net_by_level[static_cast<std::size_t>(l)]) g.net_arcs.push_back(a);
  }
  g.cell_arc_off.assign(static_cast<std::size_t>(g.num_levels) + 2, 0);
  for (int l = 0; l <= g.num_levels; ++l) {
    g.cell_arc_off[static_cast<std::size_t>(l) + 1] =
        g.cell_arc_off[static_cast<std::size_t>(l)] +
        static_cast<int>(cell_by_level[static_cast<std::size_t>(l)].size());
    for (const auto& a : cell_by_level[static_cast<std::size_t>(l)]) g.cell_arcs.push_back(a);
  }

  // ---- derived per-arc arrays -----------------------------------------------
  g.net_arc_sink_snode.reserve(g.net_arcs.size());
  g.net_arc_tree.reserve(g.net_arcs.size());
  for (const GraphCache::NetArc& a : g.net_arcs) {
    const int s = g.pin_snode[static_cast<std::size_t>(a.sink_pin)];
    if (s < 0) throw std::runtime_error("net-arc sink missing snode");
    g.net_arc_sink_snode.push_back(s);
    const int t = g.net_tree[static_cast<std::size_t>(a.net)];
    if (t < 0) throw std::runtime_error("net-arc net missing tree");
    g.net_arc_tree.push_back(t);
  }
  g.cell_arc_tree.reserve(g.cell_arcs.size());
  g.cell_arc_cap.reserve(g.cell_arcs.size());
  g.cell_arc_res.reserve(g.cell_arcs.size());
  for (const GraphCache::CellArc& a : g.cell_arcs) {
    // Every combinational output drives a net in generated designs; nets
    // always have a tree because dangling outputs get tied to POs.
    const int t = a.out_net >= 0 ? g.net_tree[static_cast<std::size_t>(a.out_net)] : -1;
    g.cell_arc_tree.push_back(std::max(t, 0));  // tree 0 as harmless fallback
    g.cell_arc_cap.push_back(
        a.out_net >= 0 ? g.net_sink_cap[static_cast<std::size_t>(a.out_net)] : 0.0);
    const CellType& type = design.library().type(a.type);
    g.cell_arc_res.push_back(type.drive_res_kohm);
    const int slot = design.pin(a.in_pin).input_slot;
    g.cell_arc_intrinsic.push_back(
        type.arcs[static_cast<std::size_t>(slot)].delay.lookup(0.03, 0.001));
  }
  // Per-level output-pin segments for the max reduction.
  g.cell_arc_seg.assign(g.cell_arcs.size(), 0);
  g.cell_out_off.assign(1, 0);
  for (std::size_t l = 0; l + 1 < g.cell_arc_off.size(); ++l) {
    const int lo = g.cell_arc_off[l];
    const int hi = g.cell_arc_off[l + 1];
    std::vector<int> outs;
    std::unordered_map<int, int> seg_of;
    for (int i = lo; i < hi; ++i) {
      const int op = g.cell_arcs[static_cast<std::size_t>(i)].out_pin;
      auto [it, inserted] = seg_of.try_emplace(op, static_cast<int>(outs.size()));
      if (inserted) outs.push_back(op);
      g.cell_arc_seg[static_cast<std::size_t>(i)] = it->second;
    }
    for (int op : outs) g.cell_out_pins.push_back(op);
    g.cell_out_off.push_back(static_cast<int>(g.cell_out_pins.size()));
  }

  // ---- startpoints -------------------------------------------------------------
  for (const Cell& c : design.cells()) {
    if (!design.is_register_cell(c.id)) continue;
    const int net = design.pin(c.output_pin).net;
    if (net < 0) continue;
    g.regq_pins.push_back(c.output_pin);
    g.regq_nets.push_back(net);
    g.regq_tree.push_back(std::max(0, g.net_tree[static_cast<std::size_t>(net)]));
    g.regq_cap.push_back(g.net_sink_cap[static_cast<std::size_t>(net)]);
    g.regq_res.push_back(g.net_drive_res[static_cast<std::size_t>(net)]);
    const CellType& type = design.cell_type(c.id);
    g.regq_intrinsic.push_back(type.arcs[0].delay.lookup(0.05, 0.001));
  }

  return cache;
}

}  // namespace tsteiner
