// Model parameter serialization: lets a trained evaluator be cached on disk
// and shared across bench binaries (training dominates suite runtime).
// Plain-text format with a config header; loading validates the header so a
// stale cache (different architecture / library) is rejected.
#pragma once

#include <optional>
#include <string>

#include "gnn/model.hpp"

namespace tsteiner {

/// Write the model's configuration and parameters. `tag` is an arbitrary
/// caller string (e.g. encoding training scale/epochs) validated on load.
bool save_model(const TimingGnn& model, const std::string& path, const std::string& tag);

/// Load parameters into a freshly constructed model. Returns nullopt if the
/// file is missing, malformed, or its config/tag does not match.
std::optional<TimingGnn> load_model(const std::string& path, const GnnConfig& config,
                                    int num_cell_types, const std::string& tag);

}  // namespace tsteiner
