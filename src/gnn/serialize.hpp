// Model parameter serialization: lets a trained evaluator be cached on disk
// and shared across bench binaries (training dominates suite runtime).
//
// The on-disk format is a TSteinerDB container (src/db) holding one MODL
// chunk — binary, integrity-checked, and rejected with a clean nullopt on
// truncation or corruption. Files written by the pre-container plain-text
// format are still readable: load_model() falls back to the legacy text
// parser when the container magic is absent. Loading validates config, tag
// and tensor shapes, so a stale cache (different architecture / training
// setup) is rejected rather than misloaded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gnn/model.hpp"

namespace tsteiner {

/// Write the model's configuration and parameters as a TSteinerDB container.
/// `tag` is an arbitrary caller string (e.g. encoding training scale/epochs)
/// validated on load.
bool save_model(const TimingGnn& model, const std::string& path, const std::string& tag);

/// Load parameters into a freshly constructed model. Returns nullopt if the
/// file is missing, malformed, corrupted, or its config/tag does not match.
/// Reads both the container format and the legacy text format.
std::optional<TimingGnn> load_model(const std::string& path, const GnnConfig& config,
                                    int num_cell_types, const std::string& tag);

/// Legacy plain-text writer, kept so the text-read fallback stays covered by
/// tests and old tooling keeps working. New code should use save_model().
bool save_model_text(const TimingGnn& model, const std::string& path, const std::string& tag);

/// MODL chunk payload codec, shared with the suite snapshot (flow/snapshot).
std::vector<std::uint8_t> encode_model_payload(const TimingGnn& model, const std::string& tag);
std::optional<TimingGnn> decode_model_payload(const std::uint8_t* data, std::size_t size,
                                              const GnnConfig& config, int num_cell_types,
                                              const std::string& tag);

/// Self-describing decode: the GnnConfig stored in the payload itself is
/// adopted instead of validated against a caller expectation, and the stored
/// tag is returned through `tag_out` (when non-null) rather than checked.
/// Used by serve session snapshots, where the snapshot is the source of
/// truth for the model architecture.
std::optional<TimingGnn> decode_model_payload_any(const std::uint8_t* data, std::size_t size,
                                                  int num_cell_types, std::string* tag_out);

}  // namespace tsteiner
