// Batched learned Steiner-point predictor (ROADMAP item 3).
//
// A small MLP-with-net-pooling in the GAT-Steiner / NeuroSteiner mold
// (PAPERS.md): every packed Hanan candidate row gets a Steiner-point
// probability from ONE padded tensor forward over the whole design, on the
// existing autodiff tape. The architecture is deliberately per-row /
// per-segment only —
//
//   h1   = relu(X W1 + b1)                row-local
//   h1m  = h1 * valid-mask                row-local
//   pool = segment_sum(h1m) / count      slot-local (net context)
//   h2   = relu([h1m | pool[slot]] W2 + b2)   row-local
//   p    = sigmoid(h2 W3 + b3)           row-local
//
// — so a net's probabilities are bitwise independent of which other nets
// share the batch (padding rows are masked to exact +0.0 before every
// reduction, and the scatter-add kernel accumulates rows in serial order),
// and bit-identical at any pool width (PR 1 kernel contract). That is what
// lets the steiner-batch differential oracle compare batch-of-N against
// batch-of-1 construction bit-for-bit.
//
// The predictor ships pretrained: construction is deterministic, seeded
// self-supervision — synthetic nets labeled by the exact iterated-1-Steiner
// construction, class-weighted BCE, Adam — and the result is cached both per
// process and on disk (same discipline as the evaluator's model cache), so
// the training cost is paid once per build directory, not per Flow. Trained
// weights persist through serve snapshots as an SMDL chunk (same ByteWriter
// discipline as the MODL codec) so the serve `wirelength` op reproduces the
// exact in-process estimates.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "autodiff/tape.hpp"
#include "steiner/batch_builder.hpp"
#include "util/rng.hpp"

namespace tsteiner {

class Design;
class SteinerForest;

struct SteinerPredictorConfig {
  int hidden = 16;  ///< width of both hidden layers
  std::uint64_t seed = 2023;
  int train_nets = 160;      ///< synthetic pretraining corpus size
  int train_steps = 80;      ///< Adam steps over the full corpus
  double learning_rate = 0.06;

  bool operator==(const SteinerPredictorConfig& o) const {
    return hidden == o.hidden && seed == o.seed && train_nets == o.train_nets &&
           train_steps == o.train_steps && learning_rate == o.learning_rate;
  }
};

class SteinerPredictor {
 public:
  explicit SteinerPredictor(const SteinerPredictorConfig& config);

  /// One forward over the padded batch; returns a probability per batch row
  /// (padding rows included, aligned with HananBatch indices). Bit-identical
  /// across thread widths and across batch compositions (see file header).
  std::vector<double> predict(const HananBatch& batch) const;

  /// Deterministic, seeded pretraining on synthetic nets labeled by the
  /// exact construction. Idempotent inputs: same config => same weights.
  void pretrain();

  /// Process-wide cache of pretrained instances keyed by config, backed by
  /// an on-disk weight cache in the working directory (same discipline as
  /// the evaluator's tsteiner_model_cache.bin: TSTEINER_NO_CACHE opts out,
  /// a config tag guards against stale files), so the pretraining cost is
  /// paid once per build directory rather than once per process.
  static std::shared_ptr<const SteinerPredictor> shared_pretrained(
      const SteinerPredictorConfig& config = {});

  std::vector<Tensor>& parameters() { return params_; }
  const std::vector<Tensor>& parameters() const { return params_; }
  const SteinerPredictorConfig& config() const { return cfg_; }

 private:
  enum ParamId : std::size_t { kW1, kB1, kW2, kB2, kW3, kB3, kNumParams };

  struct Bound {
    std::vector<Value> handles;
  };
  Bound bind(Tape& tape, bool requires_grad) const;
  /// Records the forward graph up to the pre-sigmoid logits (rows x 1).
  /// Training consumes logits directly (BCE-from-softplus keeps gradients
  /// alive where sigmoid saturates); predict() applies the sigmoid.
  Value forward_logits(Tape& tape, const HananBatch& batch, const Bound& bound) const;

  SteinerPredictorConfig cfg_;
  std::vector<Tensor> params_;
};

/// SMDL chunk payload codec (config + tag + parameter tensors), mirroring
/// the MODL codec in gnn/serialize.
std::vector<std::uint8_t> encode_steiner_predictor_payload(const SteinerPredictor& predictor,
                                                           const std::string& tag);
/// Self-describing decode: adopts the stored config, returns the stored tag
/// through `tag_out` (when non-null). nullopt on truncation/corruption.
std::optional<SteinerPredictor> decode_steiner_predictor_payload_any(const std::uint8_t* data,
                                                                     std::size_t size,
                                                                     std::string* tag_out);

/// Batched construction over raw pin sets (driver-first per net): pack ->
/// one predictor forward -> stitch. Trees come back in pin_sets order with
/// pin-node `pin` fields holding pin-set indices (build_rsmt_points
/// convention).
std::vector<SteinerTree> build_batched_trees(const std::vector<std::vector<PointF>>& pin_sets,
                                             const SteinerPredictor& predictor,
                                             const BatchBuildOptions& options,
                                             BatchBuildStats* stats = nullptr,
                                             std::vector<std::uint8_t>* used_fallback = nullptr);

/// Design-level batched construction: the drop-in counterpart of
/// build_forest (same net_to_tree layout, same pin-id stamping, movable
/// index rebuilt).
SteinerForest build_forest_batched(const Design& design, const SteinerPredictor& predictor,
                                   const BatchBuildOptions& options,
                                   BatchBuildStats* stats = nullptr,
                                   std::vector<std::uint8_t>* used_fallback = nullptr);

/// Per-net wirelength estimates of the batched construction — the serve
/// `wirelength` op's compute kernel (NeuroSteiner's placer-facing use case).
std::vector<double> estimate_wirelengths(const std::vector<std::vector<PointF>>& pin_sets,
                                         const SteinerPredictor& predictor,
                                         const BatchBuildOptions& options);

/// How a Flow constructs its initial forest.
enum class SteinerBuildMode {
  kPerNet,   ///< iterated 1-Steiner per net (the pre-batching path)
  kBatched,  ///< one predictor forward over the whole design + stitch
};

/// Flow-facing switch for initial Steiner construction. The per-net exact
/// path stays available (and is the fallback inside the batched path for
/// small or invariant-failing nets, with `batch.fallback` pinned to the
/// flow's RsmtOptions so the two modes agree bit-for-bit on fallback nets).
struct SteinerBuildOptions {
  SteinerBuildMode mode = SteinerBuildMode::kBatched;
  SteinerPredictorConfig predictor;
  BatchBuildOptions batch;
};

/// The Flow constructor's entry point: dispatches on `options.mode`, pinning
/// `batch.fallback`/threads to `rsmt` so fallback nets match the per-net
/// path exactly.
SteinerForest build_initial_forest(const Design& design, const SteinerBuildOptions& options,
                                   const RsmtOptions& rsmt, BatchBuildStats* stats = nullptr);

}  // namespace tsteiner
