#include "gnn/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace tsteiner {

Trainer::Trainer(TimingGnn* model, const TrainOptions& options)
    : model_(model), opts_(options), adam_(&model->parameters(), options.lr),
      rng_(options.seed) {}

double Trainer::train_epoch(std::span<TrainingSample> samples) {
  TS_TRACE_SPAN_CAT("gnn.train_epoch", "gnn");
  static obs::Counter& m_epochs = obs::metrics().counter("gnn.train_epochs");
  m_epochs.add();
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.shuffle(order);

  double loss_sum = 0.0;
  for (std::size_t k : order) {
    TrainingSample& s = samples[k];
    Tape tape;
    tape.reserve(tape_nodes_hint_);
    const TimingGnn::Bound bound = model_->bind(tape);
    const Value xs = tape.leaf(Tensor::column(s.xs));
    const Value ys = tape.leaf(Tensor::column(s.ys));
    const Value pred = model_->forward(tape, *s.cache, bound, xs, ys);

    Tensor target(s.arrival_label.size(), 1);
    for (std::size_t i = 0; i < s.arrival_label.size(); ++i) {
      target[i] = s.arrival_label[i] / s.cache->clock;
    }
    Value loss = tape.mse(pred, target);
    if (opts_.endpoint_loss_weight > 0.0 && !s.endpoint_pins.empty()) {
      Tensor ep_target(s.endpoint_pins.size(), 1);
      for (std::size_t i = 0; i < s.endpoint_pins.size(); ++i) {
        ep_target[i] =
            s.arrival_label[static_cast<std::size_t>(s.endpoint_pins[i])] / s.cache->clock;
      }
      const Value ep_pred = tape.gather_rows(pred, s.endpoint_pins);
      loss = tape.add(loss,
                      tape.scale(tape.mse(ep_pred, ep_target), opts_.endpoint_loss_weight));
    }
    tape.backward(loss);

    std::vector<Tensor> grads;
    model_->accumulate_param_grads(tape, bound, grads);
    // Per-tensor max-norm clipping keeps early epochs stable.
    for (Tensor& g : grads) {
      double norm = 0.0;
      for (double v : g.data()) norm += v * v;
      norm = std::sqrt(norm);
      if (norm > opts_.grad_clip) {
        const double f = opts_.grad_clip / norm;
        for (double& v : g.data()) v *= f;
      }
    }
    adam_.step(grads);
    loss_sum += tape.value(loss)[0];
    tape_nodes_hint_ = std::max(tape_nodes_hint_, tape.num_nodes());
  }
  return samples.empty() ? 0.0 : loss_sum / static_cast<double>(samples.size());
}

double Trainer::fit(std::span<TrainingSample> samples) {
  double loss = 0.0;
  for (int e = 0; e < opts_.epochs; ++e) {
    loss = train_epoch(samples);
    if ((e + 1) % 10 == 0) TS_VERBOSE("  epoch %d/%d loss %.6f", e + 1, opts_.epochs, loss);
  }
  return loss;
}

std::vector<double> Trainer::predict(const TrainingSample& sample) const {
  Tape tape;
  tape.reserve(tape_nodes_hint_);
  const TimingGnn::Bound bound = model_->bind(tape);
  const Value xs = tape.leaf(Tensor::column(sample.xs));
  const Value ys = tape.leaf(Tensor::column(sample.ys));
  const Value pred = model_->forward(tape, *sample.cache, bound, xs, ys);
  const Tensor& t = tape.value(pred);
  std::vector<double> out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = t[i] * sample.cache->clock;
  tape_nodes_hint_ = std::max(tape_nodes_hint_, tape.num_nodes());
  return out;
}

EvalMetrics Trainer::evaluate(const TrainingSample& sample) const {
  const std::vector<double> pred = predict(sample);
  EvalMetrics m;
  m.r2_all = r2_score(sample.arrival_label, pred);
  std::vector<double> gt_ends, pr_ends;
  gt_ends.reserve(sample.endpoint_pins.size());
  for (int ep : sample.endpoint_pins) {
    gt_ends.push_back(sample.arrival_label[static_cast<std::size_t>(ep)]);
    pr_ends.push_back(pred[static_cast<std::size_t>(ep)]);
  }
  m.r2_ends = gt_ends.empty() ? 1.0 : r2_score(gt_ends, pr_ends);
  return m;
}

}  // namespace tsteiner
