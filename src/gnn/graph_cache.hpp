// Static graph structures for the timing-evaluation model.
//
// The paper's evaluator runs on two graphs (Fig. 3): the *Steiner graph*
// (pin nodes + Steiner nodes connected by tree edges, plus direct net edges
// sink -> driver) and the *netlist graph* (pin nodes connected by cell arcs
// and net arcs, traversed in topological order). All of that structure is
// position-independent, so it is computed once per (design, forest topology)
// and reused across every refinement iteration; only the Steiner coordinate
// leaves change between forward passes.
#pragma once

#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

struct GraphCache {
  // ---- Steiner-graph node flattening ("snodes") ---------------------------
  int num_snodes = 0;
  /// Constant coordinate part per snode: pin positions for pin nodes, zero
  /// at Steiner slots (their coordinates are supplied as tape leaves).
  std::vector<double> base_x, base_y;
  /// movable index (forest order) -> snode id.
  std::vector<int> movable_to_snode;
  /// Static per-snode features.
  std::vector<double> feat_is_steiner, feat_is_driver, feat_is_sink, feat_degree;
  /// Sink pin capacitance per snode (pF); 0 for drivers / Steiner nodes.
  std::vector<double> snode_pin_cap;
  /// Driver snode of each tree (for total-load extraction).
  std::vector<int> tree_driver_snode;

  // ---- directed tree edges (parent -> child from each driver) -------------
  std::vector<int> edge_pa, edge_ch;  ///< sorted by depth level
  std::vector<int> edge_tree;         ///< owning tree per edge
  /// level_off[l] .. level_off[l+1] indexes the edges at depth l.
  std::vector<int> level_off;

  // ---- reduce edges: one per net sink (sink snode -> driver snode) --------
  std::vector<int> sink_snode, sink_driver_snode, sink_tree;

  // ---- netlist graph -------------------------------------------------------
  int num_pins = 0;
  std::vector<int> pin_snode;  ///< -1 for pins not present in any tree

  struct NetArc {
    int driver_pin = -1;
    int sink_pin = -1;
    int net = -1;
  };
  /// Net arcs grouped by the driver pin's topological level l:
  /// net_arc_off[l] .. net_arc_off[l+1].
  std::vector<NetArc> net_arcs;
  std::vector<int> net_arc_off;
  /// Derived, aligned with net_arcs: sink pin's snode and the net's tree.
  std::vector<int> net_arc_sink_snode, net_arc_tree;

  struct CellArc {
    int in_pin = -1;
    int out_pin = -1;
    int type = -1;     ///< cell type id
    int out_net = -1;  ///< net driven by out_pin (-1 if none)
  };
  /// Cell arcs grouped by the *output* pin's level.
  std::vector<CellArc> cell_arcs;
  std::vector<int> cell_arc_off;
  /// Derived, aligned with cell_arcs: out net's tree, sink-cap and drive-res
  /// constants, and a segment id (contiguous within each level) grouping
  /// arcs that share an output pin for the max-reduction.
  std::vector<int> cell_arc_tree;
  std::vector<double> cell_arc_cap, cell_arc_res;
  /// Zero-load arc delay at nominal slew (ns) — anchors the physical part of
  /// the learned cell-delay head.
  std::vector<double> cell_arc_intrinsic;
  std::vector<int> cell_arc_seg;
  /// Distinct output pins per level: cell_out_off[l] .. cell_out_off[l+1]
  /// indexes cell_out_pins; segment ids above are relative to the level.
  std::vector<int> cell_out_pins;
  std::vector<int> cell_out_off;

  int num_levels = 0;

  // ---- startpoints ---------------------------------------------------------
  std::vector<int> regq_pins;  ///< register Q output pins
  std::vector<int> regq_nets;  ///< net driven by each (aligned)
  std::vector<int> regq_tree;  ///< tree of that net (aligned)
  std::vector<double> regq_cap, regq_res;  ///< load constants (aligned)
  std::vector<double> regq_intrinsic;      ///< zero-load CK->Q delay (ns)

  // ---- per-net constants ----------------------------------------------------
  int num_trees = 0;
  std::vector<int> net_tree;          ///< net id -> tree index (-1 if none)
  std::vector<double> net_sink_cap;   ///< sum of sink pin caps (pF)
  std::vector<double> net_drive_res;  ///< driver cell's drive resistance

  // ---- normalization / technology -------------------------------------------
  double die_w = 1.0, die_h = 1.0;
  double clock = 1.0;
  double gcell = 8.0;
  double wire_res = 0.0;  ///< kOhm per DBU (for on-tape Elmore features)
  double wire_cap = 0.0;  ///< pF per DBU
};

/// Build the cache; `forest` supplies tree topology only (positions ignored).
std::shared_ptr<const GraphCache> build_graph_cache(const Design& design,
                                                    const SteinerForest& forest);

}  // namespace tsteiner
