#include "gnn/model.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace tsteiner {

TimingGnn::TimingGnn(const GnnConfig& config, int num_cell_types) : cfg_(config) {
  Rng rng(config.seed);
  const auto H = static_cast<std::size_t>(cfg_.hidden);
  const auto E = static_cast<std::size_t>(cfg_.type_embed);
  const auto D = static_cast<std::size_t>(cfg_.delay_hidden);
  const auto T = static_cast<std::size_t>(num_cell_types);
  auto xavier = [&rng](std::size_t rows, std::size_t cols) {
    return Tensor::randn(rng, rows, cols, std::sqrt(2.0 / static_cast<double>(rows + cols)));
  };
  params_.resize(kNumParams);
  params_[kWIn] = xavier(6, H);
  params_[kBIn] = Tensor::zeros(1, H);
  params_[kWB] = xavier(2 * H + 1, H);
  params_[kBB] = Tensor::zeros(1, H);
  params_[kWU1] = xavier(H, H);
  params_[kWU2] = xavier(H, H);
  params_[kBU] = Tensor::zeros(1, H);
  params_[kWR] = xavier(H + 1, H);
  params_[kBR] = Tensor::zeros(1, H);
  params_[kWU3] = xavier(H, H);
  params_[kWU4] = xavier(H, H);
  params_[kBU2] = Tensor::zeros(1, H);
  params_[kTypeEmb] = xavier(T, E);
  params_[kWC1] = xavier(E + 4, D);
  params_[kBC1] = Tensor::zeros(1, D);
  params_[kWC2] = xavier(D, 1);
  params_[kBC2] = Tensor::zeros(1, 1);
  params_[kWN1] = xavier(2 * H + 3, D);
  params_[kBN1] = Tensor::zeros(1, D);
  params_[kWN2] = xavier(D, 1);
  params_[kBN2] = Tensor::zeros(1, 1);
  params_[kWN3] = xavier(D, 1);
  params_[kBN3] = Tensor::zeros(1, 1);
  params_[kWS1] = xavier(3, 8);
  params_[kBS1] = Tensor::zeros(1, 8);
  params_[kWS2] = xavier(8, 1);
  params_[kBS2] = Tensor::zeros(1, 1);
}

TimingGnn::Bound TimingGnn::bind(Tape& tape) const {
  Bound b;
  b.handles.reserve(params_.size());
  for (const Tensor& p : params_) b.handles.push_back(tape.leaf(p, /*requires_grad=*/true));
  return b;
}

void TimingGnn::accumulate_param_grads(const Tape& tape, const Bound& bound,
                                       std::vector<Tensor>& grads) const {
  if (grads.size() != params_.size()) {
    grads.clear();
    for (const Tensor& p : params_) grads.push_back(Tensor::zeros(p.rows(), p.cols()));
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& g = tape.grad(bound.handles[i]);
    if (g.size() == 0) continue;
    for (std::size_t k = 0; k < g.size(); ++k) grads[i][k] += g[k];
  }
}

Value TimingGnn::forward(Tape& tape, const GraphCache& g, const Bound& bound, Value xs,
                         Value ys) const {
  TS_TRACE_SPAN_CAT("gnn.forward", "gnn");
  static obs::Counter& m_forwards = obs::metrics().counter("gnn.forwards");
  m_forwards.add();
  const auto P = [&bound](ParamId id) { return bound.handles[id]; };
  const auto S = static_cast<std::size_t>(g.num_snodes);
  const double len_scale = 1.0 / (4.0 * g.gcell);
  const double wl_scale = 1.0 / (8.0 * g.gcell);

  // ---- snode coordinates: constants + scattered movable leaves -------------
  Value sx = tape.leaf(Tensor::column(g.base_x));
  Value sy = tape.leaf(Tensor::column(g.base_y));
  if (tape.value(xs).rows() > 0) {
    sx = tape.add(sx, tape.scatter_add_rows(xs, g.movable_to_snode, S));
    sy = tape.add(sy, tape.scatter_add_rows(ys, g.movable_to_snode, S));
  }

  // ---- initial snode embeddings ---------------------------------------------
  const Value feats = tape.concat_cols({
      tape.leaf(Tensor::column(g.feat_is_steiner)),
      tape.leaf(Tensor::column(g.feat_is_driver)),
      tape.leaf(Tensor::column(g.feat_is_sink)),
      tape.leaf(Tensor::column(g.feat_degree)),
      tape.scale(sx, 1.0 / g.die_w),
      tape.scale(sy, 1.0 / g.die_h),
  });
  Value h = tape.tanh_op(tape.add(tape.matmul(feats, P(kWIn)), P(kBIn)));

  // ---- tree-edge lengths (differentiable in Steiner coordinates) -----------
  const bool has_edges = !g.edge_pa.empty();
  Value len_norm;   // (E x 1) normalized edge lengths
  Value plen_norm;  // (S x 1) driver->node path length
  Value elm_norm;   // (S x 1) clock-normalized geometric Elmore delay
  Value subtree;    // (S x 1) downstream capacitance (pF)
  if (has_edges) {
    const Value dx = tape.smooth_abs(
        tape.sub(tape.gather_rows(sx, g.edge_pa), tape.gather_rows(sx, g.edge_ch)),
        cfg_.soft_abs_delta);
    const Value dy = tape.smooth_abs(
        tape.sub(tape.gather_rows(sy, g.edge_pa), tape.gather_rows(sy, g.edge_ch)),
        cfg_.soft_abs_delta);
    const Value len = tape.add(dx, dy);  // DBU
    len_norm = tape.scale(len, len_scale);

    // Per-level index slices (edges sorted by depth in the cache). Levels
    // stay sequential; within a level the edge slices are assembled with
    // indexed parallel writes.
    std::vector<std::vector<int>> lvl_idx, lvl_pa, lvl_ch;
    for (std::size_t l = 0; l + 1 < g.level_off.size(); ++l) {
      const int lo = g.level_off[l];
      const int hi = g.level_off[l + 1];
      if (lo == hi) continue;
      const auto n = static_cast<std::size_t>(hi - lo);
      std::vector<int> idx(n), pa(n), ch(n);
      parallel_for(0, n, 512, [&](std::size_t blo, std::size_t bhi) {
        for (std::size_t i = blo; i < bhi; ++i) {
          const std::size_t e = static_cast<std::size_t>(lo) + i;
          idx[i] = static_cast<int>(e);
          pa[i] = g.edge_pa[e];
          ch[i] = g.edge_ch[e];
        }
      });
      lvl_idx.push_back(std::move(idx));
      lvl_pa.push_back(std::move(pa));
      lvl_ch.push_back(std::move(ch));
    }

    // Exact path lengths, accumulated level-by-level (each node has exactly
    // one parent edge, so a single scatter per level suffices).
    Value plen = tape.leaf(Tensor::zeros(S, 1));
    for (std::size_t l = 0; l < lvl_idx.size(); ++l) {
      const Value level_len = tape.gather_rows(len_norm, lvl_idx[l]);
      const Value reach = tape.add(tape.gather_rows(plen, lvl_pa[l]), level_len);
      plen = tape.add(plen, tape.scatter_add_rows(reach, lvl_ch[l], S));
    }
    plen_norm = plen;

    // Geometric Elmore delay, fully on-tape (the physics that links Steiner
    // positions to sign-off net delay; routed-length quantization, detours
    // and slew effects are the residual the learned heads absorb).
    // 1. node capacitance: sink pin caps + half of each adjacent edge's wire.
    const Value half_cap = tape.scale(len, 0.5 * g.wire_cap);
    Value node_cap = tape.leaf(Tensor::column(g.snode_pin_cap));
    node_cap = tape.add(node_cap, tape.scatter_add_rows(half_cap, g.edge_pa, S));
    node_cap = tape.add(node_cap, tape.scatter_add_rows(half_cap, g.edge_ch, S));
    // 2. subtree capacitance: deepest level first.
    subtree = node_cap;
    for (std::size_t l = lvl_idx.size(); l-- > 0;) {
      subtree = tape.add(
          subtree,
          tape.scatter_add_rows(tape.gather_rows(subtree, lvl_ch[l]), lvl_pa[l], S));
    }
    // 3. Elmore: elm[child] = elm[parent] + R_edge * C_subtree(child).
    Value elm = tape.leaf(Tensor::zeros(S, 1));
    for (std::size_t l = 0; l < lvl_idx.size(); ++l) {
      const Value r_edge = tape.scale(tape.gather_rows(len, lvl_idx[l]), g.wire_res);
      const Value contrib = tape.mul(r_edge, tape.gather_rows(subtree, lvl_ch[l]));
      const Value reach = tape.add(tape.gather_rows(elm, lvl_pa[l]), contrib);
      elm = tape.add(elm, tape.scatter_add_rows(reach, lvl_ch[l], S));
    }
    elm_norm = tape.scale(elm, 1.0 / g.clock);
  } else {
    len_norm = tape.leaf(Tensor::zeros(0, 1));
    plen_norm = tape.leaf(Tensor::zeros(S, 1));
    elm_norm = tape.leaf(Tensor::zeros(S, 1));
    subtree = tape.leaf(Tensor::column(g.snode_pin_cap));
  }

  // ---- Steiner-graph iterations: broadcast then reduce ----------------------
  for (int it = 0; it < cfg_.steiner_iters; ++it) {
    if (has_edges) {
      const Value hp = tape.gather_rows(h, g.edge_pa);
      const Value hc = tape.gather_rows(h, g.edge_ch);
      const Value msg = tape.relu(
          tape.add(tape.matmul(tape.concat_cols({hp, hc, len_norm}), P(kWB)), P(kBB)));
      const Value agg = tape.scatter_add_rows(msg, g.edge_ch, S);
      h = tape.tanh_op(tape.add(
          tape.add(tape.matmul(h, P(kWU1)), tape.matmul(agg, P(kWU2))), P(kBU)));
    }
    if (!g.sink_snode.empty()) {
      const Value hs = tape.gather_rows(h, g.sink_snode);
      const Value ps = tape.gather_rows(plen_norm, g.sink_snode);
      const Value rmsg = tape.relu(
          tape.add(tape.matmul(tape.concat_cols({hs, ps}), P(kWR)), P(kBR)));
      const Value ragg = tape.scatter_add_rows(rmsg, g.sink_driver_snode, S);
      h = tape.tanh_op(tape.add(
          tape.add(tape.matmul(h, P(kWU3)), tape.matmul(ragg, P(kWU4))), P(kBU2)));
    }
  }

  // ---- per-tree load features --------------------------------------------------
  Value tree_wl;       // (num_trees x 1), normalized wirelength
  Value tree_cap_pf;   // (num_trees x 1), total load capacitance (pF)
  Value tree_cap;      // (num_trees x 1), normalized
  if (has_edges && g.num_trees > 0) {
    tree_wl = tape.scale(
        tape.segment_sum(len_norm, g.edge_tree, static_cast<std::size_t>(g.num_trees)),
        len_scale > 0 ? (wl_scale / len_scale) : 1.0);
    tree_cap_pf = tape.gather_rows(subtree, g.tree_driver_snode);
    tree_cap = tape.scale(tree_cap_pf, 1.0 / 0.05);
  } else {
    tree_wl = tape.leaf(Tensor::zeros(std::max(1, g.num_trees), 1));
    tree_cap_pf = tape.leaf(Tensor::zeros(std::max(1, g.num_trees), 1));
    tree_cap = tree_cap_pf;
  }

  // ---- netlist propagation -----------------------------------------------------
  const auto NP = static_cast<std::size_t>(g.num_pins);
  Value arrival = tape.leaf(Tensor::zeros(NP, 1));

  // Startpoints: register CK->Q. Physical anchor (intrinsic + R * C_load,
  // both from the library / on-tape load) times a bounded learned correction
  // — the correction absorbs slew and table nonlinearity.
  if (!g.regq_pins.empty()) {
    const Value q_in = tape.concat_cols({
        tape.gather_rows(tree_wl, g.regq_tree),
        tape.gather_rows(tree_cap, g.regq_tree),
        tape.leaf(Tensor::column(g.regq_res)),
    });
    const Value q_hidden = tape.relu(tape.add(tape.matmul(q_in, P(kWS1)), P(kBS1)));
    Value q;
    if (cfg_.physics_anchor) {
      const Value corr =
          tape.tanh_op(tape.add(tape.matmul(q_hidden, P(kWS2)), P(kBS2)));
      const Value phys = tape.scale(
          tape.add(tape.leaf(Tensor::column(g.regq_intrinsic)),
                   tape.mul(tape.leaf(Tensor::column(g.regq_res)),
                            tape.gather_rows(tree_cap_pf, g.regq_tree))),
          1.0 / g.clock);
      q = tape.mul(phys, tape.add_scalar(tape.scale(corr, 0.5), 1.0));
    } else {
      q = tape.softplus(tape.add(tape.matmul(q_hidden, P(kWS2)), P(kBS2)));
    }
    arrival = tape.add(arrival, tape.scatter_add_rows(q, g.regq_pins, NP));
  }

  // Level-by-level propagation: cell arcs into level l, then net arcs out of
  // drivers at level l.
  for (int l = 0; l <= g.num_levels; ++l) {
    // Cell arcs whose output pin sits at level l.
    if (l + 1 < static_cast<int>(g.cell_arc_off.size())) {
      const int lo = g.cell_arc_off[static_cast<std::size_t>(l)];
      const int hi = g.cell_arc_off[static_cast<std::size_t>(l) + 1];
      if (lo < hi) {
        const auto n = static_cast<std::size_t>(hi - lo);
        std::vector<int> in_pins(n), types(n), trees(n), segs(n);
        std::vector<double> caps(n), ress(n), intrs(n);
        parallel_for(0, n, 512, [&](std::size_t blo, std::size_t bhi) {
          for (std::size_t i = blo; i < bhi; ++i) {
            const GraphCache::CellArc& a = g.cell_arcs[static_cast<std::size_t>(lo) + i];
            in_pins[i] = a.in_pin;
            types[i] = a.type;
            trees[i] = g.cell_arc_tree[static_cast<std::size_t>(lo) + i];
            caps[i] = g.cell_arc_cap[static_cast<std::size_t>(lo) + i];
            ress[i] = g.cell_arc_res[static_cast<std::size_t>(lo) + i];
            intrs[i] = g.cell_arc_intrinsic[static_cast<std::size_t>(lo) + i];
            segs[i] = g.cell_arc_seg[static_cast<std::size_t>(lo) + i];
          }
        });
        const Value emb = tape.gather_rows(P(kTypeEmb), types);
        const Value d_in = tape.concat_cols({
            emb,
            tape.gather_rows(tree_wl, trees),
            tape.gather_rows(tree_cap, trees),
            tape.leaf(Tensor::column(caps)),
            tape.leaf(Tensor::column(ress)),
        });
        const Value c_hidden =
            tape.relu(tape.add(tape.matmul(d_in, P(kWC1)), P(kBC1)));
        Value delay;
        if (cfg_.physics_anchor) {
          const Value corr =
              tape.tanh_op(tape.add(tape.matmul(c_hidden, P(kWC2)), P(kBC2)));
          // Physical anchor: intrinsic + R_drive * C_load (Elmore-consistent
          // first-order gate model), bounded learned correction on top.
          const Value phys = tape.scale(
              tape.add(tape.leaf(Tensor::column(intrs)),
                       tape.mul(tape.leaf(Tensor::column(ress)),
                                tape.gather_rows(tree_cap_pf, trees))),
              1.0 / g.clock);
          delay = tape.mul(phys, tape.add_scalar(tape.scale(corr, 0.5), 1.0));
        } else {
          delay = tape.softplus(tape.add(tape.matmul(c_hidden, P(kWC2)), P(kBC2)));
        }
        const Value cand = tape.add(tape.gather_rows(arrival, in_pins), delay);
        const int out_lo = g.cell_out_off[static_cast<std::size_t>(l)];
        const int out_hi = g.cell_out_off[static_cast<std::size_t>(l) + 1];
        const auto num_out = static_cast<std::size_t>(out_hi - out_lo);
        const Value out_arr = tape.segment_max(cand, segs, num_out, 0.0);
        std::vector<int> out_pins(num_out);
        for (std::size_t i = 0; i < num_out; ++i) {
          out_pins[i] = g.cell_out_pins[static_cast<std::size_t>(out_lo) + i];
        }
        arrival = tape.add(arrival, tape.scatter_add_rows(out_arr, out_pins, NP));
      }
    }
    // Net arcs from drivers at level l.
    if (l + 1 < static_cast<int>(g.net_arc_off.size())) {
      const int lo = g.net_arc_off[static_cast<std::size_t>(l)];
      const int hi = g.net_arc_off[static_cast<std::size_t>(l) + 1];
      if (lo < hi) {
        const auto n = static_cast<std::size_t>(hi - lo);
        std::vector<int> drv(n), snk(n), s_snode(n), trees(n), d_snode(n);
        parallel_for(0, n, 512, [&](std::size_t blo, std::size_t bhi) {
          for (std::size_t i = blo; i < bhi; ++i) {
            const GraphCache::NetArc& a = g.net_arcs[static_cast<std::size_t>(lo) + i];
            drv[i] = a.driver_pin;
            snk[i] = a.sink_pin;
            s_snode[i] = g.net_arc_sink_snode[static_cast<std::size_t>(lo) + i];
            trees[i] = g.net_arc_tree[static_cast<std::size_t>(lo) + i];
            d_snode[i] = g.pin_snode[static_cast<std::size_t>(a.driver_pin)];
            if (d_snode[i] < 0) throw std::runtime_error("driver pin missing snode");
          }
        });
        const Value elm_s = tape.gather_rows(elm_norm, s_snode);
        const Value n_in = tape.concat_cols({
            tape.gather_rows(h, s_snode),
            tape.gather_rows(h, d_snode),
            tape.gather_rows(plen_norm, s_snode),
            elm_s,
            tape.gather_rows(tree_wl, trees),
        });
        const Value hidden_n =
            tape.relu(tape.add(tape.matmul(n_in, P(kWN1)), P(kBN1)));
        Value ndelay;
        if (cfg_.physics_anchor) {
          // net delay = Elmore x bounded correction + small learned additive
          // term (captures gcell quantization and congestion detours).
          const Value mult =
              tape.tanh_op(tape.add(tape.matmul(hidden_n, P(kWN2)), P(kBN2)));
          const Value addi =
              tape.softplus(tape.add(tape.matmul(hidden_n, P(kWN3)), P(kBN3)));
          ndelay = tape.add(tape.mul(elm_s, tape.add_scalar(tape.scale(mult, 0.5), 1.0)),
                            tape.scale(addi, 0.02));
        } else {
          ndelay = tape.softplus(tape.add(tape.matmul(hidden_n, P(kWN2)), P(kBN2)));
        }
        const Value a_sink = tape.add(tape.gather_rows(arrival, drv), ndelay);
        arrival = tape.add(arrival, tape.scatter_add_rows(a_sink, snk, NP));
      }
    }
  }
  return arrival;
}

}  // namespace tsteiner
