// Classic Adam optimizer over a parameter tensor list (model training).
// Distinct from the paper's memoryless SO update (Eq. 7) used for Steiner
// refinement, which lives in src/tsteiner/optimizer.hpp.
#pragma once

#include <cmath>
#include <stdexcept>
#include <vector>

#include "autodiff/tensor.hpp"

namespace tsteiner {

class Adam {
 public:
  explicit Adam(std::vector<Tensor>* params, double lr = 5e-4, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8)
      : params_(params), lr_(lr), b1_(beta1), b2_(beta2), eps_(eps) {
    if (params == nullptr) throw std::runtime_error("Adam: null parameter list");
    for (const Tensor& p : *params) {
      m_.push_back(Tensor::zeros(p.rows(), p.cols()));
      v_.push_back(Tensor::zeros(p.rows(), p.cols()));
    }
  }

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  /// One update with the given gradients (same shapes as the parameters).
  void step(const std::vector<Tensor>& grads) {
    if (grads.size() != params_->size()) throw std::runtime_error("Adam: gradient count");
    ++t_;
    const double bc1 = 1.0 - std::pow(b1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(b2_, static_cast<double>(t_));
    for (std::size_t i = 0; i < params_->size(); ++i) {
      Tensor& p = (*params_)[i];
      const Tensor& g = grads[i];
      if (g.size() != p.size()) throw std::runtime_error("Adam: gradient shape");
      for (std::size_t k = 0; k < p.size(); ++k) {
        m_[i][k] = b1_ * m_[i][k] + (1.0 - b1_) * g[k];
        v_[i][k] = b2_ * v_[i][k] + (1.0 - b2_) * g[k] * g[k];
        const double mh = m_[i][k] / bc1;
        const double vh = v_[i][k] / bc2;
        p[k] -= lr_ * mh / (std::sqrt(vh) + eps_);
      }
    }
  }

 private:
  std::vector<Tensor>* params_;
  std::vector<Tensor> m_, v_;
  double lr_, b1_, b2_, eps_;
  long t_ = 0;
};

}  // namespace tsteiner
