#include "tsteiner/refine.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "tsteiner/gradient.hpp"
#include "util/log.hpp"

namespace tsteiner {

double adaptive_theta(GradientEvaluator& evaluator, const std::vector<double>& xs,
                      const std::vector<double>& ys, const PenaltyWeights& weights,
                      double alpha, const GradientResult& g0) {
  std::vector<double> xs2(xs.size()), ys2(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs2[i] = xs[i] + alpha * g0.grad_x[i];
    ys2[i] = ys[i] + alpha * g0.grad_y[i];
  }
  const GradientResult g1 = evaluator.gradients(xs2, ys2, weights);
  double dx2 = 0.0, dg2 = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double ddx = xs[i] - xs2[i];
    const double ddy = ys[i] - ys2[i];
    dx2 += ddx * ddx + ddy * ddy;
    const double dgx = g0.grad_x[i] - g1.grad_x[i];
    const double dgy = g0.grad_y[i] - g1.grad_y[i];
    dg2 += dgx * dgx + dgy * dgy;
  }
  if (dg2 <= 1e-24 || dx2 <= 1e-24) return 0.25;  // flat landscape: small safe step
  return std::sqrt(dx2) / std::sqrt(dg2);
}

double adaptive_theta(const TimingGnn& model, const GraphCache& cache, const Design& design,
                      const std::vector<double>& xs, const std::vector<double>& ys,
                      const PenaltyWeights& weights, double alpha) {
  GradientEvaluator evaluator(model, cache, design, xs, ys, weights);
  const GradientResult g0 = evaluator.gradients(xs, ys, weights);
  return adaptive_theta(evaluator, xs, ys, weights, alpha, g0);
}

RefineResult refine_steiner_points(const Design& design, const SteinerForest& initial,
                                   const TimingGnn& model, const RefineOptions& options) {
  if (options.topology.enabled) {
    return detail::refine_with_topology_search(design, initial, model, options);
  }
  TS_TRACE_SPAN_CAT("tsteiner.refine", "tsteiner");
  static obs::Counter& m_iterations = obs::metrics().counter("refine.iterations");
  static obs::Counter& m_accepted = obs::metrics().counter("refine.iter_accepted");
  static obs::Counter& m_rejected = obs::metrics().counter("refine.iter_rejected");
  static obs::Counter& m_backtracks = obs::metrics().counter("refine.backtracks");
  static obs::Gauge& m_theta = obs::metrics().gauge("refine.theta");
  static obs::Gauge& m_lambda_w = obs::metrics().gauge("refine.lambda_w");
  static obs::Gauge& m_lambda_t = obs::metrics().gauge("refine.lambda_t");
  RefineResult result;
  result.forest = initial;
  result.forest.build_movable_index();
  if (result.forest.num_movable() == 0) return result;  // nothing to refine

  const auto cache = build_graph_cache(design, result.forest);
  std::vector<double> xs = result.forest.gather_x();
  std::vector<double> ys = result.forest.gather_y();

  PenaltyWeights weights = options.weights;
  // Record the retained program once for this (design, forest-topology);
  // every gradient/evaluation below is an in-place replay of it.
  std::optional<GradientEvaluator> evaluator;
  {
    TS_TRACE_SPAN_CAT("refine.record", "tsteiner");
    ScopedTimer timer(result.grad_record);
    evaluator.emplace(model, *cache, design, xs, ys, weights);
  }
  GradientResult init;
  {
    TS_TRACE_SPAN_CAT("refine.gradient", "tsteiner");
    ScopedTimer timer(result.grad_replay);
    init = evaluator->gradients(xs, ys, weights);
  }
  result.init_wns = init.eval_wns_ns;
  result.init_tns = init.eval_tns_ns;
  double best_wns = init.eval_wns_ns;
  double best_tns = init.eval_tns_ns;
  std::vector<double> best_xs = xs;
  std::vector<double> best_ys = ys;

  // Adaptive stepsize (Eq. 8-9), capped so one SO step cannot exceed the
  // per-iteration move bound (the memoryless update moves each coordinate by
  // ~theta * (1-beta1)/sqrt(1-beta2) regardless of gradient magnitude).
  const double max_total_move =
      options.max_move_gcells * static_cast<double>(options.gcell_size);
  const double max_step =
      options.max_step_gcells * static_cast<double>(options.gcell_size);
  // The probe's g(x) is `init` — the same point and weights — so the
  // historical duplicate gradient evaluation is gone.
  double theta = options.fixed_theta;
  if (options.use_adaptive_theta) {
    TS_TRACE_SPAN_CAT("refine.adaptive_theta", "tsteiner");
    ScopedTimer timer(result.grad_replay);
    theta = adaptive_theta(*evaluator, xs, ys, weights, options.alpha, init);
  }
  const double step_gain =
      (1.0 - options.so.beta1) / std::sqrt(1.0 - options.so.beta2);
  theta = std::clamp(theta, 1e-3, max_step / std::max(1e-9, step_gain));
  result.theta = theta;

  // Calibrate Eq. 7's eps to the gradient scale: coordinates with |g| well
  // above the mean move ~theta (sign-like), low-gradient coordinates move
  // proportionally to g (soft-sign). Without this every Steiner point —
  // including the thousands parked at WL-optimal positions with negligible
  // timing gradient — would take a full-size step each iteration.
  SoOptions so_opts = options.so;
  {
    double gsum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      gsum += std::abs(init.grad_x[i]) + std::abs(init.grad_y[i]);
    }
    const double gmean = gsum / std::max<double>(1.0, 2.0 * static_cast<double>(xs.size()));
    so_opts.eps = std::max(so_opts.eps, 3.0 * gmean * std::sqrt(1.0 - so_opts.beta2));
  }
  SteinerOptimizer so(xs.size(), theta, so_opts);

  // Clamp into the die and into a per-point box around the initial position
  // (total displacement bound).
  const std::vector<double> xs0 = xs;
  const std::vector<double> ys0 = ys;
  const RectI boundary = design.die();
  auto clamp_all = [&] {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = std::clamp(xs[i], xs0[i] - max_total_move, xs0[i] + max_total_move);
      ys[i] = std::clamp(ys[i], ys0[i] - max_total_move, ys0[i] + max_total_move);
      xs[i] = std::clamp(xs[i], static_cast<double>(boundary.lo.x),
                         static_cast<double>(boundary.hi.x));
      ys[i] = std::clamp(ys[i], static_cast<double>(boundary.lo.y),
                         static_cast<double>(boundary.hi.y));
    }
  };

  // Scratch copies of the pre-step iterate, for the applied-move telemetry.
  std::vector<double> prev_xs, prev_ys;

  // Periodic sign-off probe: snapshot of the coordinates at the last probe
  // so each probe declares exactly the nets that moved since then — the
  // dirty set IncrementalSignoff::update's contract requires. Seeded from
  // the refine input, which is what the probe's first (anchoring) sign-off
  // sees.
  const bool probing = options.signoff_probe_every > 0 && options.signoff_probe;
  std::vector<double> probe_xs = xs0;
  std::vector<double> probe_ys = ys0;
  SteinerForest probe_forest;
  if (probing) probe_forest = result.forest;
  // The probe callback may carry sign-off state anchored on a forest from an
  // earlier refine call (iterative rounds reuse one IncrementalSignoff); the
  // first probe of *this* call therefore declares every movable tree dirty —
  // a sound superset covering any divergence between that anchor and xs0.
  bool first_probe = true;
  static obs::Counter& m_probes = obs::metrics().counter("refine.signoff_probes");

  int t = 0;
  while (true) {
    TS_TRACE_SPAN_CAT("refine.iteration", "tsteiner");
    WallTimer iter_timer;
    obs::RefineIterationRecord rec;
    rec.iter = t;
    rec.theta = so.theta();
    // lambda schedule: +1% per iteration from lambda_growth_start on.
    if (t >= options.lambda_growth_start) {
      weights.lambda_w *= 1.0 + options.lambda_growth;
      weights.lambda_t *= 1.0 + options.lambda_growth;
    }
    rec.lambda_w = weights.lambda_w;
    rec.lambda_t = weights.lambda_t;
    GradientResult g;
    {
      TS_TRACE_SPAN_CAT("refine.gradient", "tsteiner");
      ScopedTimer timer(result.grad_replay);
      g = evaluator->gradients(xs, ys, weights);
    }
    double grad_sq = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      grad_sq += g.grad_x[i] * g.grad_x[i] + g.grad_y[i] * g.grad_y[i];
    }
    rec.grad_norm = std::sqrt(grad_sq);
    prev_xs = xs;
    prev_ys = ys;
    so.step(xs, g.grad_x, max_step);
    so.step(ys, g.grad_y, max_step);
    clamp_all();
    double max_move = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double dx = xs[i] - prev_xs[i];
      const double dy = ys[i] - prev_ys[i];
      max_move = std::max(max_move, dx * dx + dy * dy);
    }
    rec.max_move = std::sqrt(max_move);

    GradientResult cur;
    {
      TS_TRACE_SPAN_CAT("refine.evaluate", "tsteiner");
      ScopedTimer timer(result.grad_replay);
      cur = evaluator->evaluate(xs, ys, weights);
    }
    result.wns_trace.push_back(cur.eval_wns_ns);
    result.tns_trace.push_back(cur.eval_tns_ns);
    rec.wns = cur.eval_wns_ns;
    rec.tns = cur.eval_tns_ns;
    const double tol_wns = options.accept_tolerance * std::abs(result.init_wns);
    const double tol_tns = options.accept_tolerance * std::abs(result.init_tns);
    if (cur.eval_wns_ns > best_wns + tol_wns || cur.eval_tns_ns > best_tns + tol_tns) {
      best_wns = std::max(best_wns, cur.eval_wns_ns);
      best_tns = std::max(best_tns, cur.eval_tns_ns);
      best_xs = xs;
      best_ys = ys;
      rec.accepted = true;
      m_accepted.add();
      if (options.theta_backtrack < 1.0) {
        so.set_theta(std::min(result.theta,
                              so.theta() / std::pow(options.theta_backtrack, 0.25)));
      }
    } else {
      xs = best_xs;  // restore S_T^(t) from the previous accepted iterate
      ys = best_ys;
      m_rejected.add();
      if (options.theta_backtrack < 1.0) {
        so.set_theta(std::max(1e-4, so.theta() * options.theta_backtrack));
        m_backtracks.add();
      }
    }
    rec.best_wns = best_wns;
    rec.best_tns = best_tns;
    if (probing && (t + 1) % options.signoff_probe_every == 0) {
      TS_TRACE_SPAN_CAT("refine.signoff_probe", "tsteiner");
      // Bitwise coordinate diff vs. the last probe -> dirty nets. The kept
      // iterate (accepted, or restored best) is what gets probed, so the
      // trajectory the sign-off telemetry shows is the one refine keeps.
      std::vector<int> dirty;
      std::vector<char> tree_seen(result.forest.trees.size(), 0);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (!first_probe && xs[i] == probe_xs[i] && ys[i] == probe_ys[i]) continue;
        const int tr = result.forest.movable()[i].tree;
        if (tree_seen[static_cast<std::size_t>(tr)]) continue;
        tree_seen[static_cast<std::size_t>(tr)] = 1;
        dirty.push_back(result.forest.trees[static_cast<std::size_t>(tr)].net);
      }
      first_probe = false;
      probe_xs = xs;
      probe_ys = ys;
      probe_forest.scatter_xy(xs, ys);
      const SignoffProbeResult probe = options.signoff_probe(probe_forest, dirty);
      m_probes.add();
      rec.has_signoff = true;
      rec.signoff_wns = probe.wns_ns;
      rec.signoff_tns = probe.tns_ns;
      rec.signoff_incremental = probe.incremental;
      rec.signoff_dirty_frac =
          design.nets().empty()
              ? 0.0
              : static_cast<double>(dirty.size()) / static_cast<double>(design.nets().size());
    }
    rec.wall_s = iter_timer.seconds();
    m_iterations.add();
    m_theta.set(so.theta());
    m_lambda_w.set(weights.lambda_w);
    m_lambda_t.set(weights.lambda_t);
    if (obs::iteration_log_enabled()) obs::log_refine_iteration(design.name(), rec);
    if (options.iteration_sink) options.iteration_sink(rec);
    result.iteration_log.push_back(rec);
    ++t;
    if (t >= options.max_iterations) break;
    const auto improved = [&](double init_v, double best_v) {
      if (init_v >= 0.0) return false;  // no violation to fix
      return (init_v - best_v) / init_v > options.mu;
    };
    if (improved(result.init_wns, best_wns) || improved(result.init_tns, best_tns)) {
      result.converged_by_ratio = true;
      break;
    }
  }

  result.iterations = t;
  result.best_wns = best_wns;
  result.best_tns = best_tns;
  const auto rel_gain = [](double init_v, double best_v) {
    return init_v < 0.0 ? (init_v - best_v) / init_v : 0.0;
  };
  if (rel_gain(result.init_wns, best_wns) < options.min_return_improvement &&
      rel_gain(result.init_tns, best_tns) < options.min_return_improvement) {
    best_xs = xs0;  // below the evaluator's resolution: keep the baseline
    best_ys = ys0;
    result.best_wns = result.init_wns;
    result.best_tns = result.init_tns;
  }
  result.forest.scatter_xy(best_xs, best_ys);
  result.forest.clamp_steiner_points(boundary);
  if (options.round_positions) result.forest.round_steiner_points();
  if (obs::run_report_enabled()) {
    obs::RefineRunRecord run;
    run.design = design.name();
    run.iterations = result.iterations;
    run.converged_by_ratio = result.converged_by_ratio;
    run.init_wns = result.init_wns;
    run.init_tns = result.init_tns;
    run.best_wns = result.best_wns;
    run.best_tns = result.best_tns;
    run.theta = result.theta;
    run.iters = result.iteration_log;
    obs::run_report().add_refine(std::move(run));
  }
  TS_VERBOSE("TSteiner %s: %d iters, WNS %.3f -> %.3f, TNS %.1f -> %.1f (model eval)",
             design.name().c_str(), t, result.init_wns, best_wns, result.init_tns, best_tns);
  return result;
}

}  // namespace tsteiner
