// Smoothed sign-off timing penalty (Section III-A, Eq. 4-6).
//
// From predicted endpoint arrivals the penalty combines WNS and TNS with
// weights lambda_w / lambda_t; both are smoothed so backward propagation
// reaches every endpoint instead of only the single worst path:
//   * WNS  w_gamma = -LSE_gamma(-slack)      (smooth minimum of slacks)
//   * TNS  t_gamma = sum_e softmin0(slack_e) (smooth min(0, s_e) per endpoint)
//   * P    = lambda_w * w_gamma + lambda_t * t_gamma   (lambdas < 0, so
//     minimizing P maximizes weighted slack).
#pragma once

#include <vector>

#include "autodiff/tape.hpp"
#include "gnn/graph_cache.hpp"

namespace tsteiner {

struct PenaltyWeights {
  double lambda_w = -200.0;  ///< paper's initialization
  double lambda_t = -2.0;
  double gamma_ns = 10.0;    ///< LSE temperature, in ns (paper: 10.0)
  /// When positive, overrides gamma_ns with gamma = gamma_relative * clock.
  /// The paper's gamma = 10 ns against its ~10 ns clocks corresponds to a
  /// relative temperature near 1; our synthetic clocks vary widely, so the
  /// relative form keeps the smoothing strength design-independent.
  double gamma_relative = 0.0;  // disabled by default: gamma_ns/clock transfers best
};

struct PenaltyTerms {
  Value penalty;      ///< 1x1, minimize
  Value smooth_wns;   ///< 1x1, clock-normalized
  Value smooth_tns;   ///< 1x1, clock-normalized
  /// Endpoint slack vector (normalized); hard WNS/TNS are recomputed from
  /// this node after every replay (hard_slack_metrics).
  Value slack;
  /// 1x1 weight leaves. The penalty is add(mul(lambda_w_leaf, smooth_wns),
  /// mul(lambda_t_leaf, smooth_tns)) so the lambda growth schedule can run
  /// under a retained program by overwriting the leaves instead of
  /// re-recording the graph with new scale() constants. The arithmetic is
  /// bit-identical to the historical scale() form.
  Value lambda_w_leaf;
  Value lambda_t_leaf;
  double hard_wns_ns = 0.0;  ///< non-smoothed WNS from the same arrivals
  double hard_tns_ns = 0.0;
};

/// Build the penalty graph on top of `arrival` (num_pins x 1, normalized by
/// clock, as produced by TimingGnn::forward). Required times follow the STA
/// convention: clock - setup at register D pins, clock at POs.
PenaltyTerms build_timing_penalty(Tape& tape, const GraphCache& cache, const Design& design,
                                  Value arrival, const PenaltyWeights& weights);

/// The LSE temperature actually used for `weights` on a design with this
/// clock. Gamma is baked into the recorded graph (it sits inside the
/// nonlinearities), so a retained program must reject weight sets that
/// resolve to a different gamma.
double penalty_gamma(const PenaltyWeights& weights, double clock);

/// Hard (non-smoothed) WNS/TNS in ns from a normalized endpoint-slack
/// tensor. Shared by the recording path and the replay path so both derive
/// the keep-best metrics with the identical fold.
void hard_slack_metrics(const Tensor& slack, double clock, double* wns_ns, double* tns_ns);

}  // namespace tsteiner
