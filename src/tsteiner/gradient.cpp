#include "tsteiner/gradient.hpp"

namespace tsteiner {

namespace {

GradientResult run(const TimingGnn& model, const GraphCache& cache, const Design& design,
                   const std::vector<double>& xs, const std::vector<double>& ys,
                   const PenaltyWeights& weights, bool with_backward) {
  Tape tape;
  const TimingGnn::Bound bound = model.bind(tape);
  const Value vx = tape.leaf(Tensor::column(xs), /*requires_grad=*/true);
  const Value vy = tape.leaf(Tensor::column(ys), /*requires_grad=*/true);
  const Value arrival = model.forward(tape, cache, bound, vx, vy);
  const PenaltyTerms terms = build_timing_penalty(tape, cache, design, arrival, weights);

  GradientResult r;
  r.penalty = tape.value(terms.penalty)[0];
  r.eval_wns_ns = terms.hard_wns_ns;
  r.eval_tns_ns = terms.hard_tns_ns;
  if (with_backward) {
    tape.backward(terms.penalty);
    const Tensor& gx = tape.grad(vx);
    const Tensor& gy = tape.grad(vy);
    r.grad_x.assign(xs.size(), 0.0);
    r.grad_y.assign(ys.size(), 0.0);
    for (std::size_t i = 0; i < gx.size(); ++i) r.grad_x[i] = gx[i];
    for (std::size_t i = 0; i < gy.size(); ++i) r.grad_y[i] = gy[i];
  }
  return r;
}

}  // namespace

GradientResult compute_timing_gradients(const TimingGnn& model, const GraphCache& cache,
                                        const Design& design, const std::vector<double>& xs,
                                        const std::vector<double>& ys,
                                        const PenaltyWeights& weights) {
  return run(model, cache, design, xs, ys, weights, /*with_backward=*/true);
}

GradientResult evaluate_timing(const TimingGnn& model, const GraphCache& cache,
                               const Design& design, const std::vector<double>& xs,
                               const std::vector<double>& ys, const PenaltyWeights& weights) {
  return run(model, cache, design, xs, ys, weights, /*with_backward=*/false);
}

}  // namespace tsteiner
