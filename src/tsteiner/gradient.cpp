#include "tsteiner/gradient.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace tsteiner {

namespace {

GradientResult run(const TimingGnn& model, const GraphCache& cache, const Design& design,
                   const std::vector<double>& xs, const std::vector<double>& ys,
                   const PenaltyWeights& weights, bool with_backward) {
  Tape tape;
  const TimingGnn::Bound bound = model.bind(tape);
  const Value vx = tape.leaf(Tensor::column(xs), /*requires_grad=*/true);
  const Value vy = tape.leaf(Tensor::column(ys), /*requires_grad=*/true);
  const Value arrival = model.forward(tape, cache, bound, vx, vy);
  const PenaltyTerms terms = build_timing_penalty(tape, cache, design, arrival, weights);

  GradientResult r;
  r.penalty = tape.value(terms.penalty)[0];
  r.eval_wns_ns = terms.hard_wns_ns;
  r.eval_tns_ns = terms.hard_tns_ns;
  if (with_backward) {
    tape.backward(terms.penalty);
    const Tensor& gx = tape.grad(vx);
    const Tensor& gy = tape.grad(vy);
    r.grad_x.assign(xs.size(), 0.0);
    r.grad_y.assign(ys.size(), 0.0);
    for (std::size_t i = 0; i < gx.size(); ++i) r.grad_x[i] = gx[i];
    for (std::size_t i = 0; i < gy.size(); ++i) r.grad_y[i] = gy[i];
  }
  return r;
}

}  // namespace

GradientResult compute_timing_gradients(const TimingGnn& model, const GraphCache& cache,
                                        const Design& design, const std::vector<double>& xs,
                                        const std::vector<double>& ys,
                                        const PenaltyWeights& weights) {
  return run(model, cache, design, xs, ys, weights, /*with_backward=*/true);
}

GradientResult evaluate_timing(const TimingGnn& model, const GraphCache& cache,
                               const Design& design, const std::vector<double>& xs,
                               const std::vector<double>& ys, const PenaltyWeights& weights) {
  return run(model, cache, design, xs, ys, weights, /*with_backward=*/false);
}

GradientEvaluator::GradientEvaluator(const TimingGnn& model, const GraphCache& cache,
                                     const Design& design, const std::vector<double>& xs,
                                     const std::vector<double>& ys,
                                     const PenaltyWeights& weights) {
  rebind(model, cache, design, xs, ys, weights);
}

void GradientEvaluator::rebind(const TimingGnn& model, const GraphCache& cache,
                               const Design& design, const std::vector<double>& xs,
                               const std::vector<double>& ys, const PenaltyWeights& weights) {
  program_.reset();
  Tape& tape = program_.tape();
  const TimingGnn::Bound bound = model.bind(tape);
  vx_ = tape.leaf(Tensor::column(xs), /*requires_grad=*/true);
  vy_ = tape.leaf(Tensor::column(ys), /*requires_grad=*/true);
  const Value arrival = model.forward(tape, cache, bound, vx_, vy_);
  const PenaltyTerms terms = build_timing_penalty(tape, cache, design, arrival, weights);
  lambda_w_ = terms.lambda_w_leaf;
  lambda_t_ = terms.lambda_t_leaf;
  slack_ = terms.slack;
  penalty_ = terms.penalty;
  clock_ = cache.clock;
  gamma_ = penalty_gamma(weights, cache.clock);
  num_movable_ = xs.size();
  // Only the coordinate and lambda leaves vary between refine iterations;
  // gradients are needed for the coordinates alone, which lets the reverse
  // schedule drop the model-parameter halves of every matmul/concat.
  program_.finalize(penalty_, {vx_, vy_, lambda_w_, lambda_t_}, {vx_, vy_});
}

GradientResult GradientEvaluator::replay(const std::vector<double>& xs,
                                         const std::vector<double>& ys,
                                         const PenaltyWeights& weights, bool with_backward) {
  if (xs.size() != num_movable_ || ys.size() != num_movable_) {
    throw std::runtime_error(
        "GradientEvaluator: movable-point count changed — the forest topology differs "
        "from the recorded program, construct a new evaluator");
  }
  if (penalty_gamma(weights, clock_) != gamma_) {
    throw std::runtime_error(
        "GradientEvaluator: gamma differs from the recorded program — construct a new "
        "evaluator");
  }
  program_.set_leaf(vx_, xs);
  program_.set_leaf(vy_, ys);
  program_.set_leaf_scalar(lambda_w_, weights.lambda_w);
  program_.set_leaf_scalar(lambda_t_, weights.lambda_t);
  const TapeProgram::ReplayCounters before = program_.replay_counters();
  program_.replay_forward();
  if (obs::metrics_enabled()) {
    // Surface the dirty-group effectiveness of this replay (autodiff itself
    // stays obs-free; the raw counters live on the program).
    const TapeProgram::ReplayCounters& after = program_.replay_counters();
    static obs::Counter& m_replays = obs::metrics().counter("grad.replay_forwards");
    static obs::Counter& m_skips = obs::metrics().counter("grad.replay_full_skips");
    static obs::Counter& m_ops_run = obs::metrics().counter("grad.replay_ops_executed");
    static obs::Counter& m_ops_skip = obs::metrics().counter("grad.replay_ops_skipped");
    m_replays.add(after.forward_replays - before.forward_replays);
    m_skips.add(after.full_forward_skips - before.full_forward_skips);
    m_ops_run.add(after.ops_executed - before.ops_executed);
    m_ops_skip.add(after.ops_skipped - before.ops_skipped);
  }

  GradientResult r;
  r.penalty = program_.value(penalty_)[0];
  hard_slack_metrics(program_.value(slack_), clock_, &r.eval_wns_ns, &r.eval_tns_ns);
  if (with_backward) {
    program_.replay_backward();
    const Tensor& gx = program_.grad(vx_);
    const Tensor& gy = program_.grad(vy_);
    r.grad_x.assign(xs.size(), 0.0);
    r.grad_y.assign(ys.size(), 0.0);
    for (std::size_t i = 0; i < gx.size(); ++i) r.grad_x[i] = gx[i];
    for (std::size_t i = 0; i < gy.size(); ++i) r.grad_y[i] = gy[i];
  }
  return r;
}

GradientResult GradientEvaluator::gradients(const std::vector<double>& xs,
                                            const std::vector<double>& ys,
                                            const PenaltyWeights& weights) {
  return replay(xs, ys, weights, /*with_backward=*/true);
}

GradientResult GradientEvaluator::evaluate(const std::vector<double>& xs,
                                           const std::vector<double>& ys,
                                           const PenaltyWeights& weights) {
  return replay(xs, ys, weights, /*with_backward=*/false);
}

}  // namespace tsteiner
