// Sign-off timing optimization gradient generation (Section III-A).
//
// One forward + backward pass of the learned evaluator: Steiner coordinates
// enter as gradient-required tape leaves, every other feature is constant
// (the paper: "we only set the feature of Steiner nodes' positions as
// 'gradient required'"), and backward() through the smoothed penalty yields
// (dP/dX_s, dP/dY_s) per Steiner point.
//
// Two execution modes:
//  * the free functions record a fresh tape per call (tests, one-shot
//    diagnostics);
//  * GradientEvaluator records the (design, forest-topology) graph once
//    into a TapeProgram and replays it in place for every subsequent
//    (xs, ys, lambda) query — the mode the refinement loop runs in. Replay
//    results are bit-identical to the fresh-tape path (tests/replay_test).
#pragma once

#include <vector>

#include "autodiff/program.hpp"
#include "gnn/model.hpp"
#include "tsteiner/penalty.hpp"

namespace tsteiner {

struct GradientResult {
  std::vector<double> grad_x, grad_y;  ///< dP/dX_s, dP/dY_s (per movable point)
  double penalty = 0.0;
  double eval_wns_ns = 0.0;  ///< model-evaluated (hard) WNS
  double eval_tns_ns = 0.0;
};

/// Evaluate penalty and Steiner-position gradients at (xs, ys).
GradientResult compute_timing_gradients(const TimingGnn& model, const GraphCache& cache,
                                        const Design& design, const std::vector<double>& xs,
                                        const std::vector<double>& ys,
                                        const PenaltyWeights& weights);

/// Forward-only variant (no backward pass): model-evaluated WNS/TNS.
GradientResult evaluate_timing(const TimingGnn& model, const GraphCache& cache,
                               const Design& design, const std::vector<double>& xs,
                               const std::vector<double>& ys, const PenaltyWeights& weights);

/// Retained evaluator: binds the model, records GNN forward + timing penalty
/// once for a fixed (design, forest-topology) pair, then answers gradient /
/// evaluation queries by replaying the program with updated coordinate and
/// lambda leaves. Zero heap allocation per steady-state query.
///
/// The program is only valid for the topology it was recorded on: queries
/// with a different movable-point count, or weights that resolve to a
/// different LSE gamma (gamma sits inside the recorded nonlinearities),
/// throw — callers must construct a new evaluator after a topology change.
class GradientEvaluator {
 public:
  GradientEvaluator(const TimingGnn& model, const GraphCache& cache, const Design& design,
                    const std::vector<double>& xs, const std::vector<double>& ys,
                    const PenaltyWeights& weights);

  /// Replayed equivalent of compute_timing_gradients().
  GradientResult gradients(const std::vector<double>& xs, const std::vector<double>& ys,
                           const PenaltyWeights& weights);
  /// Replayed equivalent of evaluate_timing() (forward only).
  GradientResult evaluate(const std::vector<double>& xs, const std::vector<double>& ys,
                          const PenaltyWeights& weights);

  /// Re-record the program for a new (cache, coordinates) pair in place —
  /// the topology-edit path: discrete search changes the tape's *shape*, so
  /// after an accepted edit the driver rebinds the evaluator to the edited
  /// forest's graph cache instead of constructing a fresh one (the program's
  /// arenas and this object's identity survive). Equivalent to constructing
  /// a new evaluator; replays after rebind() are bit-identical to a fresh
  /// record (tests/replay_test.cpp).
  void rebind(const TimingGnn& model, const GraphCache& cache, const Design& design,
              const std::vector<double>& xs, const std::vector<double>& ys,
              const PenaltyWeights& weights);

  /// The underlying program (node counts, allocation counter) for benches
  /// and tests.
  const TapeProgram& program() const { return program_; }

 private:
  GradientResult replay(const std::vector<double>& xs, const std::vector<double>& ys,
                        const PenaltyWeights& weights, bool with_backward);

  TapeProgram program_;
  Value vx_{}, vy_{};
  Value lambda_w_{}, lambda_t_{};
  Value slack_{}, penalty_{};
  double clock_ = 1.0;
  double gamma_ = 0.0;
  std::size_t num_movable_ = 0;
};

}  // namespace tsteiner
