// Sign-off timing optimization gradient generation (Section III-A).
//
// One forward + backward pass of the learned evaluator: Steiner coordinates
// enter as gradient-required tape leaves, every other feature is constant
// (the paper: "we only set the feature of Steiner nodes' positions as
// 'gradient required'"), and backward() through the smoothed penalty yields
// (dP/dX_s, dP/dY_s) per Steiner point.
#pragma once

#include <vector>

#include "gnn/model.hpp"
#include "tsteiner/penalty.hpp"

namespace tsteiner {

struct GradientResult {
  std::vector<double> grad_x, grad_y;  ///< dP/dX_s, dP/dY_s (per movable point)
  double penalty = 0.0;
  double eval_wns_ns = 0.0;  ///< model-evaluated (hard) WNS
  double eval_tns_ns = 0.0;
};

/// Evaluate penalty and Steiner-position gradients at (xs, ys).
GradientResult compute_timing_gradients(const TimingGnn& model, const GraphCache& cache,
                                        const Design& design, const std::vector<double>& xs,
                                        const std::vector<double>& ys,
                                        const PenaltyWeights& weights);

/// Forward-only variant (no backward pass): model-evaluated WNS/TNS.
GradientResult evaluate_timing(const TimingGnn& model, const GraphCache& cache,
                               const Design& design, const std::vector<double>& xs,
                               const std::vector<double>& ys, const PenaltyWeights& weights);

}  // namespace tsteiner
