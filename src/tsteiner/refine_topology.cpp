// Alternating discrete-topology search + gradient refinement
// (RefineOptions::topology, ROADMAP item 4).
//
// Each round runs a deterministic MCTS over the highest-|gradient| nets'
// topology edits, then a classic gradient segment on the (possibly
// re-shaped) forest. Three scoring tiers, cheap to expensive:
//
//   1. model score  — the retained-autodiff penalty replay for
//      shape-preserving (all-reshift) candidates, a cache + tape rebuild for
//      shape-changing ones; MCTS node expansion runs on this tier alone.
//   2. episodic     — IncrementalSignoff on the edited net's dirty set
//      (TopologyOptions::episodic_signoff) gates each net's chosen edit
//      sequence: no sign-off gain, no edit. Reverts re-declare the net dirty
//      (geometry changed back) per the incremental dirty-net contract.
//   3. anchor       — the full sign-off (TopologyOptions::full_signoff)
//      keeps the best forest across rounds; if it never improves on the
//      input, the input passes through unchanged.
//
// Determinism: the search itself is serial over nets (the scoring underneath
// uses the bit-identical parallel pool), every random draw comes from
// Rng::mix substreams keyed by (seed, round, net, edit-path), and ties break
// by index — so results are bit-identical at any pool width and across
// reruns. With topology disabled this file is never entered and the classic
// loop's bytes are untouched.
#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "search/mcts.hpp"
#include "tsteiner/refine.hpp"
#include "util/log.hpp"

namespace tsteiner::detail {

namespace {

/// Combined normalized improvement of `a` over `b`; positive = better.
double improvement(const SignoffProbeResult& a, const SignoffProbeResult& b, double wns_scale,
                   double tns_scale) {
  return (a.wns_ns - b.wns_ns) / wns_scale + (a.tns_ns - b.tns_ns) / tns_scale;
}

double scale_of(double v) { return std::max(std::abs(v), 1e-9); }

}  // namespace

RefineResult refine_with_topology_search(const Design& design, const SteinerForest& initial,
                                         const TimingGnn& model, const RefineOptions& options) {
  TS_TRACE_SPAN_CAT("tsteiner.refine_topology", "tsteiner");
  static obs::Counter& m_rounds = obs::metrics().counter("search.rounds");
  static obs::Counter& m_nets = obs::metrics().counter("search.nets_searched");
  static obs::Counter& m_applied = obs::metrics().counter("search.edits_applied");
  static obs::Counter& m_rejected = obs::metrics().counter("search.edits_rejected");
  static obs::Counter& m_rebuilds = obs::metrics().counter("search.tape_rebuilds");
  static obs::Counter& m_episodic = obs::metrics().counter("search.episodic_probes");
  static obs::Counter& m_episodic_rejects = obs::metrics().counter("search.episodic_rejects");

  const TopologyOptions& topo = options.topology;
  RefineResult result;
  result.forest = initial;
  result.forest.build_movable_index();
  if (result.forest.num_movable() == 0) return result;  // nothing to refine

  const RectI die = design.die();
  const PenaltyWeights weights = options.weights;

  // Fresh-tape model evaluation of an arbitrary forest (round boundaries;
  // the per-candidate scoring below replays the retained program instead
  // whenever the shape allows).
  const auto model_eval = [&](const SteinerForest& f) {
    const auto cache = build_graph_cache(design, f);
    ScopedTimer timer(result.grad_record);
    return evaluate_timing(model, *cache, design, f.gather_x(), f.gather_y(), weights);
  };

  const GradientResult init_eval = model_eval(result.forest);
  result.init_wns = init_eval.eval_wns_ns;
  result.init_tns = init_eval.eval_tns_ns;

  const auto anchor_of = [&](const SteinerForest& f,
                             const GradientResult* have) -> SignoffProbeResult {
    if (topo.full_signoff) return topo.full_signoff(f);
    const GradientResult g = have != nullptr ? *have : model_eval(f);
    return {g.eval_wns_ns, g.eval_tns_ns, false};
  };
  const SignoffProbeResult init_anchor = anchor_of(result.forest, &init_eval);
  SignoffProbeResult best_anchor = init_anchor;
  SteinerForest best_forest = result.forest;
  const double anchor_sw = scale_of(init_anchor.wns_ns);
  const double anchor_st = scale_of(init_anchor.tns_ns);

  // Episodic probe bookkeeping: `pending_dirty` holds every net whose
  // geometry changed (including reverts) since the episodic callback last
  // saw the forest — the dirty-net contract of IncrementalSignoff::update.
  // The first call declares every net, a sound superset covering whatever
  // forest the caller's sign-off state was anchored on.
  const bool episodic = static_cast<bool>(topo.episodic_signoff);
  std::vector<char> pending_dirty(design.nets().size(), 0);
  bool first_probe = true;
  SignoffProbeResult episodic_baseline{};
  const auto episodic_probe = [&](const SteinerForest& f, int extra_net) {
    std::vector<int> dirty;
    for (std::size_t net = 0; net < pending_dirty.size(); ++net) {
      const bool all = first_probe && net < f.net_to_tree.size() && f.net_to_tree[net] >= 0;
      if (all || pending_dirty[net] || static_cast<int>(net) == extra_net) {
        dirty.push_back(static_cast<int>(net));
      }
    }
    first_probe = false;
    std::fill(pending_dirty.begin(), pending_dirty.end(), 0);
    m_episodic.add();
    return topo.episodic_signoff(f, dirty);
  };

  int global_iter = 0;
  for (int round = 0; round < topo.rounds; ++round) {
    TS_TRACE_SPAN_CAT("refine.search_round", "tsteiner");
    m_rounds.add();
    WallTimer round_timer;
    obs::RefineIterationRecord rec;
    rec.topology_round = true;
    rec.iter = global_iter;
    rec.lambda_w = weights.lambda_w;
    rec.lambda_t = weights.lambda_t;

    // --- search phase -----------------------------------------------------
    auto cache = build_graph_cache(design, result.forest);
    std::vector<double> xs = result.forest.gather_x();
    std::vector<double> ys = result.forest.gather_y();
    std::optional<GradientEvaluator> evaluator;
    {
      ScopedTimer timer(result.grad_record);
      evaluator.emplace(model, *cache, design, xs, ys, weights);
    }
    GradientResult g;
    {
      ScopedTimer timer(result.grad_replay);
      g = evaluator->gradients(xs, ys, weights);
    }
    double cur_wns = g.eval_wns_ns;
    double cur_tns = g.eval_tns_ns;
    double grad_sq = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      grad_sq += g.grad_x[i] * g.grad_x[i] + g.grad_y[i] * g.grad_y[i];
    }
    rec.grad_norm = std::sqrt(grad_sq);

    // Net selection: rank trees by the timing pressure the gradient puts on
    // their Steiner points; ties break by tree index.
    std::vector<double> tree_grad(result.forest.trees.size(), 0.0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const MovableRef& ref = result.forest.movable()[i];
      tree_grad[static_cast<std::size_t>(ref.tree)] +=
          std::abs(g.grad_x[i]) + std::abs(g.grad_y[i]);
    }
    std::vector<int> ranked;
    for (std::size_t t = 0; t < result.forest.trees.size(); ++t) {
      if (result.forest.trees[t].nodes.size() >= 3) ranked.push_back(static_cast<int>(t));
    }
    std::sort(ranked.begin(), ranked.end(), [&](int a, int b) {
      const double ga = tree_grad[static_cast<std::size_t>(a)];
      const double gb = tree_grad[static_cast<std::size_t>(b)];
      if (ga != gb) return ga > gb;
      return a < b;
    });
    if (static_cast<int>(ranked.size()) > topo.nets_per_round) {
      ranked.resize(static_cast<std::size_t>(topo.nets_per_round));
    }

    if (episodic && !ranked.empty()) episodic_baseline = episodic_probe(result.forest, -1);

    int edits_applied = 0;
    int edits_rejected = 0;
    for (int t : ranked) {
      m_nets.add();
      const SteinerTree& tree = result.forest.trees[static_cast<std::size_t>(t)];
      const int net = tree.net;
      // Movable span of tree t (contiguous, in node order) for the
      // shape-preserving replay fast path.
      std::size_t span_lo = 0, span_hi = 0;
      {
        const std::vector<MovableRef>& mov = result.forest.movable();
        while (span_lo < mov.size() && mov[span_lo].tree < t) ++span_lo;
        span_hi = span_lo;
        while (span_hi < mov.size() && mov[span_hi].tree == t) ++span_hi;
      }
      const double model_sw = scale_of(cur_wns);
      const double model_st = scale_of(cur_tns);

      search::MctsOptions mcts;
      mcts.rollouts = topo.rollouts;
      mcts.max_depth = topo.max_depth;
      mcts.exploration = topo.exploration;
      mcts.seed = topo.seed;
      mcts.edits.max_candidates = topo.max_candidates;
      const search::TopoScoreFn score = [&](const SteinerTree& cand, bool shape_changed) {
        GradientResult ev;
        if (!shape_changed) {
          // Tier 1a: the edit only moved coordinates — replay the retained
          // program with the tree's span updated (dirty-group replay).
          std::vector<double> cand_xs = xs;
          std::vector<double> cand_ys = ys;
          for (std::size_t i = span_lo; i < span_hi; ++i) {
            const std::size_t node =
                static_cast<std::size_t>(result.forest.movable()[i].node);
            cand_xs[i] = cand.nodes[node].pos.x;
            cand_ys[i] = cand.nodes[node].pos.y;
          }
          ScopedTimer timer(result.grad_replay);
          ev = evaluator->evaluate(cand_xs, cand_ys, weights);
        } else {
          // Tier 1b: the tape's shape changed — rebuild cache + tape for
          // the candidate forest.
          m_rebuilds.add();
          SteinerForest scratch = result.forest;
          scratch.replace_tree(t, cand);
          const auto scratch_cache = build_graph_cache(design, scratch);
          ScopedTimer timer(result.grad_record);
          ev = evaluate_timing(model, *scratch_cache, design, scratch.gather_x(),
                               scratch.gather_y(), weights);
        }
        return (ev.eval_wns_ns - cur_wns) / model_sw + (ev.eval_tns_ns - cur_tns) / model_st;
      };

      const search::MctsResult found =
          search_tree_edits(tree, die, static_cast<std::uint64_t>(round),
                            static_cast<std::uint64_t>(net), score, mcts);
      edits_rejected += static_cast<int>(found.stats.rejected);
      if (found.best_path.empty() || found.best_score <= 0.0) continue;

      SteinerForest cand_forest = result.forest;
      cand_forest.replace_tree(t, found.best_tree);
      bool accept = true;
      if (episodic) {
        // Tier 2: the net's chosen sequence must pay off under sign-off
        // restricted to its own dirty set.
        const SignoffProbeResult after = episodic_probe(cand_forest, net);
        if (improvement(after, episodic_baseline, anchor_sw, anchor_st) <= 0.0) {
          accept = false;
          m_episodic_rejects.add();
          // The callback's state saw the candidate; the revert is itself a
          // geometry change of `net`, so re-anchor on the kept forest now.
          pending_dirty[static_cast<std::size_t>(net)] = 1;
          episodic_baseline = episodic_probe(result.forest, -1);
        } else {
          episodic_baseline = after;
        }
      }
      if (!accept) {
        edits_rejected += static_cast<int>(found.best_path.size());
        continue;
      }
      bool shape_changed = false;
      for (const search::TopologyEdit& e : found.best_path) {
        shape_changed = shape_changed || !search::shape_preserving(e);
      }
      result.forest = std::move(cand_forest);
      edits_applied += static_cast<int>(found.best_path.size());
      xs = result.forest.gather_x();
      ys = result.forest.gather_y();
      if (shape_changed) {
        cache = build_graph_cache(design, result.forest);
        ScopedTimer timer(result.grad_record);
        evaluator->rebind(model, *cache, design, xs, ys, weights);
        m_rebuilds.add();
      }
      {
        ScopedTimer timer(result.grad_replay);
        const GradientResult ev = evaluator->evaluate(xs, ys, weights);
        cur_wns = ev.eval_wns_ns;
        cur_tns = ev.eval_tns_ns;
      }
    }
    m_applied.add(static_cast<std::uint64_t>(edits_applied));
    m_rejected.add(static_cast<std::uint64_t>(edits_rejected));

    // Anchor the post-search forest too: a gradient segment can wander off a
    // sign-off gain the accepted edits just banked (the model is a learned
    // proxy), and keep-best must not lose it. With the episodic reward wired
    // its last probe IS the full sign-off of the current forest
    // (IncrementalSignoff::update is bit-identical to run_signoff under the
    // dirty-net contract), so no extra sign-off run is needed.
    if (edits_applied > 0) {
      const SignoffProbeResult post_search =
          episodic ? episodic_baseline : anchor_of(result.forest, nullptr);
      if (improvement(post_search, best_anchor, anchor_sw, anchor_st) > 0.0) {
        best_anchor = post_search;
        best_forest = result.forest;
      }
    }

    rec.wns = cur_wns;
    rec.tns = cur_tns;
    rec.best_wns = cur_wns;
    rec.best_tns = cur_tns;
    rec.accepted = edits_applied > 0;
    rec.search_nets = static_cast<int>(ranked.size());
    rec.search_edits_applied = edits_applied;
    rec.search_edits_rejected = edits_rejected;
    rec.wall_s = round_timer.seconds();
    result.wns_trace.push_back(cur_wns);
    result.tns_trace.push_back(cur_tns);
    if (obs::iteration_log_enabled()) obs::log_refine_iteration(design.name(), rec);
    if (options.iteration_sink) options.iteration_sink(rec);
    result.iteration_log.push_back(rec);
    ++global_iter;

    // --- gradient phase ---------------------------------------------------
    RefineOptions gopts = options;
    gopts.topology = TopologyOptions{};  // classic loop on the current shape
    gopts.max_iterations = topo.gradient_iterations;
    gopts.min_return_improvement = 0.0;  // the outer anchor owns pass-through
    if (options.iteration_sink) {
      const int base = global_iter;
      gopts.iteration_sink = [&, base](const obs::RefineIterationRecord& r) {
        obs::RefineIterationRecord shifted = r;
        shifted.iter += base;
        options.iteration_sink(shifted);
      };
    }
    const std::vector<double> pre_xs = xs;
    const std::vector<double> pre_ys = ys;
    RefineResult seg = refine_steiner_points(design, result.forest, model, gopts);
    for (obs::RefineIterationRecord r : seg.iteration_log) {
      r.iter += global_iter;
      result.iteration_log.push_back(r);
    }
    result.wns_trace.insert(result.wns_trace.end(), seg.wns_trace.begin(), seg.wns_trace.end());
    result.tns_trace.insert(result.tns_trace.end(), seg.tns_trace.begin(), seg.tns_trace.end());
    result.grad_record.wall_s += seg.grad_record.wall_s;
    result.grad_record.busy_s += seg.grad_record.busy_s;
    result.grad_replay.wall_s += seg.grad_replay.wall_s;
    result.grad_replay.busy_s += seg.grad_replay.busy_s;
    result.theta = seg.theta;
    global_iter += seg.iterations;
    // Nets the segment moved become dirty for the next episodic anchor.
    {
      const std::vector<double> post_xs = seg.forest.gather_x();
      const std::vector<double> post_ys = seg.forest.gather_y();
      for (std::size_t i = 0; i < post_xs.size(); ++i) {
        if (post_xs[i] == pre_xs[i] && post_ys[i] == pre_ys[i]) continue;
        const MovableRef& ref = seg.forest.movable()[i];
        const int net = seg.forest.trees[static_cast<std::size_t>(ref.tree)].net;
        pending_dirty[static_cast<std::size_t>(net)] = 1;
      }
    }
    result.forest = std::move(seg.forest);

    // --- keep-best anchor -------------------------------------------------
    const SignoffProbeResult anchored = anchor_of(result.forest, nullptr);
    if (improvement(anchored, best_anchor, anchor_sw, anchor_st) > 0.0) {
      best_anchor = anchored;
      best_forest = result.forest;
    } else if (round + 1 < topo.rounds) {
      // Restart the next round from the best forest; every net that differs
      // from the discarded iterate changed geometry and must go dirty.
      for (std::size_t t = 0; t < result.forest.trees.size(); ++t) {
        const SteinerTree& cur = result.forest.trees[t];
        const SteinerTree& best = best_forest.trees[t];
        bool differs = cur.nodes.size() != best.nodes.size() ||
                       cur.edges.size() != best.edges.size();
        for (std::size_t i = 0; !differs && i < cur.nodes.size(); ++i) {
          differs = cur.nodes[i].pos.x != best.nodes[i].pos.x ||
                    cur.nodes[i].pos.y != best.nodes[i].pos.y ||
                    cur.nodes[i].pin != best.nodes[i].pin;
        }
        for (std::size_t i = 0; !differs && i < cur.edges.size(); ++i) {
          differs = cur.edges[i].a != best.edges[i].a || cur.edges[i].b != best.edges[i].b;
        }
        if (differs) pending_dirty[static_cast<std::size_t>(cur.net)] = 1;
      }
      result.forest = best_forest;
    }
  }

  result.iterations = global_iter;
  if (improvement(best_anchor, init_anchor, anchor_sw, anchor_st) <= 0.0) {
    // The anchor never improved: pass the input through unchanged (the
    // topology-search analogue of min_return_improvement).
    result.forest = initial;
    result.forest.build_movable_index();
    result.best_wns = result.init_wns;
    result.best_tns = result.init_tns;
  } else {
    result.forest = std::move(best_forest);
    const GradientResult fin = model_eval(result.forest);
    result.best_wns = fin.eval_wns_ns;
    result.best_tns = fin.eval_tns_ns;
  }
  if (obs::run_report_enabled()) {
    obs::RefineRunRecord run;
    run.design = design.name();
    run.iterations = result.iterations;
    run.converged_by_ratio = result.converged_by_ratio;
    run.init_wns = result.init_wns;
    run.init_tns = result.init_tns;
    run.best_wns = result.best_wns;
    run.best_tns = result.best_tns;
    run.theta = result.theta;
    run.iters = result.iteration_log;
    obs::run_report().add_refine(std::move(run));
  }
  TS_VERBOSE("TSteiner %s: %d rounds topology search, WNS %.3f -> %.3f, TNS %.1f -> %.1f",
             design.name().c_str(), topo.rounds, result.init_wns, result.best_wns,
             result.init_tns, result.best_tns);
  return result;
}

}  // namespace tsteiner::detail
