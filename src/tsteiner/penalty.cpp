#include "tsteiner/penalty.hpp"

#include <algorithm>
#include <stdexcept>

namespace tsteiner {

PenaltyTerms build_timing_penalty(Tape& tape, const GraphCache& cache, const Design& design,
                                  Value arrival, const PenaltyWeights& weights) {
  const std::vector<int> endpoints = design.endpoint_pins();
  if (endpoints.empty()) throw std::runtime_error("design has no timing endpoints");

  std::vector<double> required(endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    const Pin& p = design.pin(endpoints[i]);
    double req = design.clock_period();
    if (p.kind == PinKind::kCellInput) req -= design.cell_type(p.cell).setup_ns;
    required[i] = req / cache.clock;  // normalized
  }

  // slack_e = required_e - arrival_e   (normalized units)
  const Value ep_arrival = tape.gather_rows(arrival, endpoints);
  const Value slack = tape.sub(tape.leaf(Tensor::column(required)), ep_arrival);

  const double gamma = penalty_gamma(weights, cache.clock);

  PenaltyTerms t;
  t.slack = slack;
  // Smooth WNS: min(s) = -max(-s) -> -LSE(-s).
  t.smooth_wns = tape.neg(tape.log_sum_exp(tape.neg(slack), gamma));
  // Smooth TNS: sum of smooth min(0, s_e).
  t.smooth_tns = tape.sum_all(tape.soft_min0(slack, gamma));
  // The lambdas enter as 1x1 leaves so a retained program can run the growth
  // schedule via set_leaf; mul(x, lambda) == scale(x, lambda) bit-for-bit.
  t.lambda_w_leaf = tape.leaf(Tensor(1, 1, weights.lambda_w));
  t.lambda_t_leaf = tape.leaf(Tensor(1, 1, weights.lambda_t));
  t.penalty = tape.add(tape.mul(t.smooth_wns, t.lambda_w_leaf),
                       tape.mul(t.smooth_tns, t.lambda_t_leaf));

  // Hard metrics from the same arrivals (for Algorithm 1's keep-best test).
  hard_slack_metrics(tape.value(slack), cache.clock, &t.hard_wns_ns, &t.hard_tns_ns);
  return t;
}

double penalty_gamma(const PenaltyWeights& weights, double clock) {
  return weights.gamma_relative > 0.0 ? weights.gamma_relative
                                      : std::max(1e-6, weights.gamma_ns / clock);
}

void hard_slack_metrics(const Tensor& slack, double clock, double* wns_ns, double* tns_ns) {
  double wns = slack[0];
  double tns = 0.0;
  for (std::size_t i = 0; i < slack.size(); ++i) {
    wns = std::min(wns, slack[i]);
    tns += std::min(0.0, slack[i]);
  }
  *wns_ns = wns * clock;
  *tns_ns = tns * clock;
}

}  // namespace tsteiner
