#include "tsteiner/penalty.hpp"

#include <algorithm>
#include <stdexcept>

namespace tsteiner {

PenaltyTerms build_timing_penalty(Tape& tape, const GraphCache& cache, const Design& design,
                                  Value arrival, const PenaltyWeights& weights) {
  const std::vector<int> endpoints = design.endpoint_pins();
  if (endpoints.empty()) throw std::runtime_error("design has no timing endpoints");

  std::vector<double> required(endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    const Pin& p = design.pin(endpoints[i]);
    double req = design.clock_period();
    if (p.kind == PinKind::kCellInput) req -= design.cell_type(p.cell).setup_ns;
    required[i] = req / cache.clock;  // normalized
  }

  // slack_e = required_e - arrival_e   (normalized units)
  const Value ep_arrival = tape.gather_rows(arrival, endpoints);
  const Value slack = tape.sub(tape.leaf(Tensor::column(required)), ep_arrival);

  const double gamma = weights.gamma_relative > 0.0
                           ? weights.gamma_relative
                           : std::max(1e-6, weights.gamma_ns / cache.clock);

  PenaltyTerms t;
  // Smooth WNS: min(s) = -max(-s) -> -LSE(-s).
  t.smooth_wns = tape.neg(tape.log_sum_exp(tape.neg(slack), gamma));
  // Smooth TNS: sum of smooth min(0, s_e).
  t.smooth_tns = tape.sum_all(tape.soft_min0(slack, gamma));
  t.penalty = tape.add(tape.scale(t.smooth_wns, weights.lambda_w),
                       tape.scale(t.smooth_tns, weights.lambda_t));

  // Hard metrics from the same arrivals (for Algorithm 1's keep-best test).
  const Tensor& s = tape.value(slack);
  double wns = s[0];
  double tns = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    wns = std::min(wns, s[i]);
    tns += std::min(0.0, s[i]);
  }
  t.hard_wns_ns = wns * cache.clock;
  t.hard_tns_ns = tns * cache.clock;
  return t;
}

}  // namespace tsteiner
