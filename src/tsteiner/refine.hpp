// Concurrent timing-driven Steiner point refinement (Algorithm 1).
//
// Fully automated per the paper: the stepsize theta comes from the
// Barzilai-Borwein-like Adaptive_Theta probe (Eq. 8-9), lambda_w / lambda_t
// grow 1% per iteration starting from iteration 5, moves are clamped to the
// grid-graph boundary and to a per-design maximum distance tied to the gcell
// dimensions, the loop keeps the best (model-evaluated) solution and restores
// it on regression, and it stops at N iterations or once WNS *or* TNS has
// improved by the converge ratio mu.
#pragma once

#include <functional>
#include <vector>

#include "gnn/model.hpp"
#include "obs/report.hpp"
#include "steiner/steiner_tree.hpp"
#include "tsteiner/gradient.hpp"
#include "tsteiner/optimizer.hpp"
#include "tsteiner/penalty.hpp"
#include "util/timer.hpp"

namespace tsteiner {

/// What a periodic sign-off probe reports back to the refine loop (for
/// telemetry only — the loop's keep-best decisions stay model-driven).
struct SignoffProbeResult {
  double wns_ns = 0.0;
  double tns_ns = 0.0;
  bool incremental = false;  ///< served by the incremental update path
};

/// Sign-off probe callback: `dirty_nets` lists every net whose Steiner
/// coordinates changed (bitwise) since the previous probe call — exactly the
/// set IncrementalSignoff::update needs under the dirty-net contract
/// (docs/incremental.md). The first call sees all moved-so-far nets relative
/// to the refine input forest.
using SignoffProbeFn =
    std::function<SignoffProbeResult(const SteinerForest&, const std::vector<int>&)>;

/// Stateless full sign-off callback (callers wire Flow::run_signoff) — the
/// keep-best anchor of the topology-search rounds.
using SignoffAnchorFn = std::function<SignoffProbeResult(const SteinerForest&)>;

/// Alternating discrete-search / gradient refinement (ROADMAP item 4).
///
/// When enabled, refine_steiner_points runs `rounds` alternations of (a) a
/// deterministic MCTS over topology edits of the highest-|gradient| nets,
/// scored by the retained-autodiff penalty replay and episodically gated by
/// `episodic_signoff` on the edited net's dirty set, and (b) a gradient
/// segment of `gradient_iterations` classic iterations on the (possibly
/// re-shaped) forest, rebuilding the tape only for rounds whose topology
/// actually changed. `full_signoff` anchors keep-best across rounds; if the
/// anchor never improves, the initial forest passes through unchanged.
///
/// Off (the default) is byte-identical to the classic fixed-topology loop.
/// On, results are bit-identical at any pool width and across reruns: all
/// search randomness comes from Rng::mix substreams keyed by
/// (seed, round, net, edit-path).
struct TopologyOptions {
  bool enabled = false;
  int rounds = 3;
  int gradient_iterations = 12;
  int nets_per_round = 4;     ///< top-|gradient| trees searched per round
  int rollouts = 12;          ///< MCTS leaf evaluations per searched net
  int max_depth = 2;          ///< longest edit sequence per candidate
  int max_candidates = 8;     ///< proposals enumerated per search node
  double exploration = 0.7;   ///< UCT constant
  std::uint64_t seed = 0x70b0u;
  /// Episodic reward: sign-off restricted to the dirty-net set of the edit
  /// under test (callers wire IncrementalSignoff::update — the same
  /// dirty-net contract as RefineOptions::signoff_probe). Absent, edits are
  /// accepted on the model score alone.
  SignoffProbeFn episodic_signoff;
  /// Keep-best anchor at round boundaries; absent, the model evaluation of
  /// the whole forest anchors instead.
  SignoffAnchorFn full_signoff;
};

struct RefineOptions {
  PenaltyWeights weights;          ///< lambda_w = -200, lambda_t = -2, gamma = 10
  double lambda_growth = 0.01;     ///< +1% per iteration ...
  int lambda_growth_start = 5;     ///< ... starting from the 5th iteration
  double alpha = 5.0;              ///< Adaptive_Theta probe scale (Eq. 8)
  double mu = 0.1;                 ///< converge ratio
  int max_iterations = 40;         ///< N
  /// Keep-best noise floor: an iterate is accepted only when it improves the
  /// model-evaluated WNS or TNS by at least this fraction of the initial
  /// value. Below the evaluator's resolution (small designs), nothing is
  /// accepted and the initial trees pass through unchanged — matching the
  /// paper's near-1.000 wirelength/via ratios.
  double accept_tolerance = 0.002;
  /// Return the *initial* forest unless the model-evaluated WNS or TNS
  /// improved by at least this fraction overall. Claimed gains below the
  /// evaluator's resolution do not transfer to sign-off (they are model
  /// misfit, not timing), so the flow passes the baseline trees through
  /// unchanged — the paper's near-1.000 WL/via ratios behave the same way.
  double min_return_improvement = 0.015;
  SoOptions so;                    ///< Eq. 7 hyper-parameters
  /// Largest *total* displacement per Steiner point, in gcell widths. The
  /// paper constrains moves "according to the width and length of the
  /// global routing grid graph", i.e. essentially die-bounded; the
  /// physics-anchored evaluator extrapolates reliably, so a generous bound
  /// is safe (clamping to the die always applies).
  double max_move_gcells = 64.0;
  /// Largest displacement applied in a single iteration, in gcell widths.
  double max_step_gcells = 0.5;
  std::int64_t gcell_size = 8;
  bool use_adaptive_theta = true;  ///< ablation: fixed stepsize below
  double fixed_theta = 0.5;
  /// Backtracking: multiply theta by this on every rejected iterate (and by
  /// its inverse fourth root on acceptance, capped at the initial theta).
  /// 1.0 disables backtracking and reproduces the paper's fixed-theta loop.
  double theta_backtrack = 0.7;
  bool round_positions = true;     ///< paper's post-processing rounding
  /// Observational sign-off probe: every `signoff_probe_every` iterations
  /// (after the accept/reject decision) the loop snapshots the kept iterate
  /// and calls `signoff_probe` with the nets whose coordinates changed since
  /// the previous probe. 0 disables. Results land in the iteration telemetry
  /// (signoff_* fields); the refine trajectory is unaffected.
  int signoff_probe_every = 0;
  SignoffProbeFn signoff_probe;
  /// Streaming consumer of per-iteration telemetry: invoked with each
  /// completed record as it is appended to RefineResult::iteration_log
  /// (tsteiner_serve forwards these as progress frames). Purely
  /// observational — the refine trajectory is unaffected.
  std::function<void(const obs::RefineIterationRecord&)> iteration_sink;
  /// Discrete topology search interleaved with the gradient loop; disabled
  /// by default (bit-identical classic behavior).
  TopologyOptions topology;
};

struct RefineResult {
  SteinerForest forest;
  int iterations = 0;
  bool converged_by_ratio = false;
  double theta = 0.0;
  /// Model-evaluated metrics (ns), before and after.
  double init_wns = 0.0, init_tns = 0.0;
  double best_wns = 0.0, best_tns = 0.0;
  std::vector<double> wns_trace, tns_trace;
  /// Full per-iteration telemetry (superset of wns_trace/tns_trace): theta,
  /// gradient norm, applied move, lambda schedule, accept decision, and
  /// per-iteration wall time. Always populated; also streamed as JSONL when
  /// TSTEINER_REFINE_LOG is set and embedded in the TSTEINER_RUN_REPORT
  /// artifact (docs/observability.md).
  std::vector<obs::RefineIterationRecord> iteration_log;
  /// Runtime split of the gradient work (Table-IV style): one-time program
  /// recording vs. the per-iteration replays the retained mode reduces the
  /// loop to.
  PhaseStat grad_record;
  PhaseStat grad_replay;
};

/// Runs Algorithm 1 on a copy of `initial` and returns the refined forest.
/// The model must have been trained for the design's technology; the graph
/// cache is built internally from the initial topology. With
/// options.topology.enabled the call dispatches to the alternating
/// search + gradient driver (refine_topology.cpp) instead.
RefineResult refine_steiner_points(const Design& design, const SteinerForest& initial,
                                   const TimingGnn& model, const RefineOptions& options = {});

namespace detail {
/// The topology-enabled driver behind refine_steiner_points; exposed for the
/// dispatch in refine.cpp only.
RefineResult refine_with_topology_search(const Design& design, const SteinerForest& initial,
                                         const TimingGnn& model, const RefineOptions& options);
}  // namespace detail

/// Adaptive stepsize (Eq. 9): theta = |x - x'|_2 / |g(x) - g(x')|_2 with
/// x' = x + alpha * g(x). The gradient at x is taken from `g0` (the caller
/// already has it — refine computes it once and shares it) and the probe
/// point's gradient comes from a replay of `evaluator`.
double adaptive_theta(GradientEvaluator& evaluator, const std::vector<double>& xs,
                      const std::vector<double>& ys, const PenaltyWeights& weights,
                      double alpha, const GradientResult& g0);

/// One-shot convenience overload (tests, ablations): records a program for
/// (design, forest-topology) and runs the probe on it.
double adaptive_theta(const TimingGnn& model, const GraphCache& cache, const Design& design,
                      const std::vector<double>& xs, const std::vector<double>& ys,
                      const PenaltyWeights& weights, double alpha);

}  // namespace tsteiner
