// Random Steiner-point disturbance baseline (Fig. 2 / Fig. 5's
// 'ExpV-Random'): every Steiner point moves uniformly within +-max_dist on
// each axis, clamped into the die, positions rounded like the refined flow.
#pragma once

#include "steiner/steiner_tree.hpp"
#include "util/rng.hpp"

namespace tsteiner {

SteinerForest random_disturb(const SteinerForest& forest, const RectI& boundary,
                             double max_dist, Rng& rng);

}  // namespace tsteiner
