// Random Steiner-point disturbance baseline (Fig. 2 / Fig. 5's
// 'ExpV-Random'): every Steiner point moves uniformly within +-max_dist on
// each axis, clamped into the die, positions rounded like the refined flow.
#pragma once

#include "steiner/steiner_tree.hpp"
#include "util/rng.hpp"

namespace tsteiner {

SteinerForest random_disturb(const SteinerForest& forest, const RectI& boundary,
                             double max_dist, Rng& rng);

/// Seeded overload: the disturbance is a pure function of (forest, boundary,
/// max_dist, seed). Fuzz/verify call sites use this form so a failing case
/// replays from its printed seed alone, with no ambient Rng stream position.
SteinerForest random_disturb(const SteinerForest& forest, const RectI& boundary,
                             double max_dist, std::uint64_t seed);

}  // namespace tsteiner
