#include "tsteiner/random_move.hpp"

namespace tsteiner {

SteinerForest random_disturb(const SteinerForest& forest, const RectI& boundary,
                             double max_dist, Rng& rng) {
  SteinerForest out = forest;
  for (SteinerTree& tree : out.trees) {
    for (SteinerNode& node : tree.nodes) {
      if (!node.is_steiner()) continue;
      node.pos.x += rng.uniform(-max_dist, max_dist);
      node.pos.y += rng.uniform(-max_dist, max_dist);
      node.pos = clamp_into(node.pos, boundary);
      node.pos = to_f(round_to_i(node.pos));
    }
  }
  out.build_movable_index();
  return out;
}

SteinerForest random_disturb(const SteinerForest& forest, const RectI& boundary,
                             double max_dist, std::uint64_t seed) {
  Rng rng(seed);
  return random_disturb(forest, boundary, max_dist, rng);
}

}  // namespace tsteiner
