// Stochastic optimizer SO for Steiner point refinement (Eq. 7).
//
// The paper's update is deliberately *memoryless* — m and v are rebuilt from
// the current gradient each iteration (no running moments), which makes the
// per-coordinate step magnitude nearly gradient-scale-invariant:
//   m = (1 - beta1) * g,  v = (1 - beta2) * g (.) g
//   x <- x - theta * m / (sqrt(v) + eps)
// A classic Adam-with-moments variant is provided for the stepsize ablation
// bench.
#pragma once

#include <cmath>
#include <vector>

namespace tsteiner {

struct SoOptions {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  bool with_momentum = false;  ///< ablation: classic Adam running moments
};

class SteinerOptimizer {
 public:
  SteinerOptimizer(std::size_t n, double theta, const SoOptions& options = {})
      : theta_(theta), opts_(options), m_(n, 0.0), v_(n, 0.0) {}

  void set_theta(double theta) { theta_ = theta; }
  double theta() const { return theta_; }

  /// In-place update of xs given gradient g (Eq. 7). `max_move` bounds the
  /// per-coordinate displacement (grid-graph constraint, Section IV-A).
  void step(std::vector<double>& xs, const std::vector<double>& g, double max_move) {
    ++t_;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      double m, v;
      if (opts_.with_momentum) {
        m_[i] = opts_.beta1 * m_[i] + (1.0 - opts_.beta1) * g[i];
        v_[i] = opts_.beta2 * v_[i] + (1.0 - opts_.beta2) * g[i] * g[i];
        m = m_[i] / (1.0 - std::pow(opts_.beta1, static_cast<double>(t_)));
        v = v_[i] / (1.0 - std::pow(opts_.beta2, static_cast<double>(t_)));
      } else {
        m = (1.0 - opts_.beta1) * g[i];
        v = (1.0 - opts_.beta2) * g[i] * g[i];
      }
      double delta = theta_ * m / (std::sqrt(v) + opts_.eps);
      if (delta > max_move) delta = max_move;
      if (delta < -max_move) delta = -max_move;
      xs[i] -= delta;
    }
  }

 private:
  double theta_;
  SoOptions opts_;
  std::vector<double> m_, v_;
  long t_ = 0;
};

}  // namespace tsteiner
