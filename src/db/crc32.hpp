// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to integrity-check every
// TSteinerDB chunk. Standard reflected table-driven implementation; matches
// zlib's crc32() so containers can be checked with external tooling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsteiner::db {

std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace tsteiner::db
