// TSteinerDB: single-file, versioned, chunked binary container.
//
// Layout (all integers little-endian; see docs/db_format.md):
//
//   [0..3]   magic "TSDB"
//   [4..7]   u32 format version (kFormatVersion)
//   [8..11]  u32 reserved (zero)
//   then a sequence of chunks:
//   [ u32 type (fourcc) | u64 payload length | u32 crc32(payload) | payload ]
//   terminated by a zero-length "FEND" chunk.
//
// The end chunk distinguishes a complete container from one truncated at a
// chunk boundary; truncation inside a chunk is caught by the length field,
// and payload corruption by the per-chunk CRC. DbReader::open() parses and
// CRC-validates the whole chunk table up front, so a reader never hands out
// a payload whose integrity has not been established, and every failure mode
// maps to a precise human-readable error string instead of UB.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tsteiner::db {

inline constexpr char kMagic[4] = {'T', 'S', 'D', 'B'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Chunk type tag from a 4-character name, e.g. fourcc("LIBR").
constexpr std::uint32_t fourcc(const char (&name)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(name[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[3])) << 24;
}

std::string fourcc_name(std::uint32_t type);

// Chunk types used by the snapshot subsystem. A reader skips unknown types,
// so new chunk kinds are a backward-compatible addition; changing the layout
// *inside* an existing chunk requires a format-version bump.
inline constexpr std::uint32_t kChunkMeta = fourcc("META");
inline constexpr std::uint32_t kChunkLibrary = fourcc("LIBR");
inline constexpr std::uint32_t kChunkDesign = fourcc("DSGN");
inline constexpr std::uint32_t kChunkForest = fourcc("FRST");
inline constexpr std::uint32_t kChunkFlowCal = fourcc("FCAL");
inline constexpr std::uint32_t kChunkModel = fourcc("MODL");
inline constexpr std::uint32_t kChunkSteinerModel = fourcc("SMDL");
inline constexpr std::uint32_t kChunkSample = fourcc("SMPL");
inline constexpr std::uint32_t kChunkEnd = fourcc("FEND");

/// Streaming writer: header on open, one chunk per add, end marker on
/// finish. The file is invalid (no FEND) until finish() succeeds.
class DbWriter {
 public:
  ~DbWriter();
  DbWriter() = default;
  DbWriter(const DbWriter&) = delete;
  DbWriter& operator=(const DbWriter&) = delete;

  bool open(const std::string& path);
  bool add_chunk(std::uint32_t type, const std::vector<std::uint8_t>& payload);
  /// Writes the end chunk and closes; returns false on any I/O failure.
  bool finish();

 private:
  void* file_ = nullptr;  // FILE*, kept out of the header
  bool failed_ = false;
};

struct ChunkInfo {
  std::uint32_t type = 0;
  std::uint64_t offset = 0;  ///< payload offset in the file
  std::uint64_t size = 0;    ///< payload size in bytes
  std::uint32_t crc = 0;     ///< stored CRC (validated on open)
};

/// Whole-file reader. open() maps the container into memory, walks the chunk
/// table, and CRC-checks every payload; on any structural or integrity
/// problem it fails with a precise message and exposes nothing.
class DbReader {
 public:
  /// On failure returns false and, when `error` is non-null, stores a
  /// description such as "chunk FRST at offset 96: CRC mismatch".
  bool open(const std::string& path, std::string* error = nullptr);

  std::uint32_t version() const { return version_; }
  const std::vector<ChunkInfo>& chunks() const { return chunks_; }

  /// All payloads of the given type, in file order.
  std::vector<const ChunkInfo*> find_all(std::uint32_t type) const;
  /// First chunk of the given type, or nullptr.
  const ChunkInfo* find(std::uint32_t type) const;

  /// Payload bytes of a chunk returned by find()/find_all()/chunks().
  const std::uint8_t* payload(const ChunkInfo& chunk) const {
    return data_.data() + chunk.offset;
  }

 private:
  std::vector<std::uint8_t> data_;
  std::vector<ChunkInfo> chunks_;
  std::uint32_t version_ = 0;
};

}  // namespace tsteiner::db
