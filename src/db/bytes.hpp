// Little-endian fixed-width byte encoding for the TSteinerDB container.
//
// ByteWriter appends primitives to a growable buffer; ByteReader consumes
// them with bounds checking. A reader that runs past the end (or sees a
// length prefix larger than the remaining payload) latches ok() == false and
// every subsequent read returns a zero value, so decoders can emit a long
// straight-line sequence of reads and check ok() once per logical record
// instead of after every field. All multi-byte values are little-endian
// regardless of host order, so containers are portable across machines.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace tsteiner::db {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { append_le(std::bit_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }
  void i32_vec(const std::vector<int>& v) {
    u64(v.size());
    for (int x : v) i32(x);
  }
  /// Append pre-encoded bytes verbatim (e.g. a typed codec's payload).
  void raw(const std::vector<std::uint8_t>& bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  bool ok() const { return ok_; }
  /// True when every byte was consumed and no read under-ran.
  bool done() const { return ok_ && pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }
  double f64() { return std::bit_cast<double>(take_le<std::uint64_t>()); }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<double> f64_vec() {
    const std::uint64_t n = u64();
    // Each element occupies 8 bytes, so a length prefix beyond remaining/8
    // can only come from corruption; reject before allocating.
    if (!ok_ || n > remaining() / 8) {
      ok_ = false;
      return {};
    }
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double& x : v) x = f64();
    return v;
  }
  std::vector<int> i32_vec() {
    const std::uint64_t n = u64();
    if (!ok_ || n > remaining() / 4) {
      ok_ = false;
      return {};
    }
    std::vector<int> v(static_cast<std::size_t>(n));
    for (int& x : v) x = i32();
    return v;
  }

 private:
  template <typename T>
  T take_le() {
    if (!ok_ || size_ - pos_ < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace tsteiner::db
