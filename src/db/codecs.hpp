// Typed chunk codecs for the TSteinerDB container: cell library, design
// (with its benchmark spec), and Steiner forest. Each encode_* produces one
// chunk payload; each decode_* validates structure as it parses and returns
// nullopt on any malformed input (the container layer has already CRC-checked
// the bytes, so a decode failure means a logic/version problem, not file
// corruption). Model parameters are encoded by gnn/serialize and flow-level
// calibration/sample payloads by flow/snapshot, keeping the library
// dependency graph acyclic (db sits below gnn and flow).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/design_generator.hpp"
#include "netlist/liberty.hpp"
#include "netlist/netlist.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner::db {

std::vector<std::uint8_t> encode_library(const CellLibrary& lib);
std::optional<CellLibrary> decode_library(const std::uint8_t* data, std::size_t size);

/// Stable identity of a library: CRC32 of its encoded form. Snapshots store
/// it so artifacts referencing type ids are never resolved against a
/// different library.
std::uint32_t library_fingerprint(const CellLibrary& lib);

/// The design payload carries the BenchmarkSpec it was generated from plus
/// the complete object state (cells, pins, nets, die, clock), so ids that
/// other chunks reference (pins in forests, labels per pin) round-trip
/// bit-exactly. `library` must outlive the returned design.
std::vector<std::uint8_t> encode_design(const BenchmarkSpec& spec, const Design& design);
struct DecodedDesign {
  BenchmarkSpec spec;
  Design design;
};
std::optional<DecodedDesign> decode_design(const std::uint8_t* data, std::size_t size,
                                           const CellLibrary& library);

std::vector<std::uint8_t> encode_forest(const SteinerForest& forest);
/// Validates tree structure (connectivity, index ranges, finite coordinates)
/// exactly like the text reader in steiner/forest_io; the movable index is
/// rebuilt.
std::optional<SteinerForest> decode_forest(const std::uint8_t* data, std::size_t size);

}  // namespace tsteiner::db
