#include "db/container.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "db/bytes.hpp"
#include "db/crc32.hpp"

namespace tsteiner::db {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::string fourcc_name(std::uint32_t type) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((type >> (8 * i)) & 0xFF);
    s[static_cast<std::size_t>(i)] = std::isprint(static_cast<unsigned char>(c)) ? c : '?';
  }
  return s;
}

DbWriter::~DbWriter() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

bool DbWriter::open(const std::string& path) {
  if (file_ != nullptr) return false;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  file_ = f;
  ByteWriter header;
  for (char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kFormatVersion);
  header.u32(0);  // reserved
  const auto& bytes = header.bytes();
  failed_ = std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size();
  return !failed_;
}

bool DbWriter::add_chunk(std::uint32_t type, const std::vector<std::uint8_t>& payload) {
  if (file_ == nullptr || failed_) return false;
  ByteWriter head;
  head.u32(type);
  head.u64(payload.size());
  head.u32(crc32(payload));
  std::FILE* f = static_cast<std::FILE*>(file_);
  failed_ = std::fwrite(head.bytes().data(), 1, head.bytes().size(), f) !=
                head.bytes().size() ||
            (!payload.empty() &&
             std::fwrite(payload.data(), 1, payload.size(), f) != payload.size());
  return !failed_;
}

bool DbWriter::finish() {
  if (file_ == nullptr) return false;
  const bool ok = add_chunk(kChunkEnd, {}) &&
                  std::fflush(static_cast<std::FILE*>(file_)) == 0;
  std::fclose(static_cast<std::FILE*>(file_));
  file_ = nullptr;
  return ok && !failed_;
}

bool DbReader::open(const std::string& path, std::string* error) {
  data_.clear();
  chunks_.clear();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    set_error(error, "cannot open " + path);
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (file_size < 0) {
    std::fclose(f);
    set_error(error, "cannot determine size of " + path);
    return false;
  }
  data_.resize(static_cast<std::size_t>(file_size));
  const bool read_ok =
      data_.empty() || std::fread(data_.data(), 1, data_.size(), f) == data_.size();
  std::fclose(f);
  if (!read_ok) {
    set_error(error, "short read on " + path);
    return false;
  }

  constexpr std::size_t kHeaderSize = 12;
  if (data_.size() < kHeaderSize) {
    set_error(error, path + ": too small to hold a TSteinerDB header (" +
                         std::to_string(data_.size()) + " bytes)");
    return false;
  }
  if (!std::equal(kMagic, kMagic + 4, data_.begin())) {
    set_error(error, path + ": bad magic (not a TSteinerDB container)");
    return false;
  }
  ByteReader header(data_.data() + 4, 8);
  version_ = header.u32();
  header.u32();  // reserved
  if (version_ != kFormatVersion) {
    set_error(error, path + ": unsupported format version " + std::to_string(version_) +
                         " (this build reads version " + std::to_string(kFormatVersion) + ")");
    return false;
  }

  // Walk the chunk sequence; every structural defect names the offset.
  std::size_t pos = kHeaderSize;
  bool saw_end = false;
  while (pos < data_.size()) {
    constexpr std::size_t kChunkHeader = 4 + 8 + 4;
    if (data_.size() - pos < kChunkHeader) {
      set_error(error, path + ": truncated chunk header at offset " + std::to_string(pos));
      return false;
    }
    ByteReader ch(data_.data() + pos, kChunkHeader);
    const std::uint32_t type = ch.u32();
    const std::uint64_t size = ch.u64();
    const std::uint32_t stored_crc = ch.u32();
    pos += kChunkHeader;
    if (size > data_.size() - pos) {
      set_error(error, path + ": chunk " + fourcc_name(type) + " at offset " +
                           std::to_string(pos - kChunkHeader) + " claims " +
                           std::to_string(size) + " payload bytes but only " +
                           std::to_string(data_.size() - pos) + " remain (truncated?)");
      return false;
    }
    const std::uint32_t computed = crc32(data_.data() + pos, static_cast<std::size_t>(size));
    if (computed != stored_crc) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "stored 0x%08X, computed 0x%08X", stored_crc, computed);
      set_error(error, path + ": chunk " + fourcc_name(type) + " at offset " +
                           std::to_string(pos - kChunkHeader) + ": CRC mismatch (" + buf + ")");
      return false;
    }
    if (type == kChunkEnd) {
      saw_end = true;
      if (pos + size != data_.size()) {
        set_error(error, path + ": trailing data after end chunk at offset " +
                             std::to_string(pos + size));
        return false;
      }
      break;
    }
    chunks_.push_back({type, pos, size, stored_crc});
    pos += size;
  }
  if (!saw_end) {
    set_error(error, path + ": missing end chunk (file truncated at a chunk boundary?)");
    return false;
  }
  return true;
}

std::vector<const ChunkInfo*> DbReader::find_all(std::uint32_t type) const {
  std::vector<const ChunkInfo*> out;
  for (const ChunkInfo& c : chunks_) {
    if (c.type == type) out.push_back(&c);
  }
  return out;
}

const ChunkInfo* DbReader::find(std::uint32_t type) const {
  for (const ChunkInfo& c : chunks_) {
    if (c.type == type) return &c;
  }
  return nullptr;
}

}  // namespace tsteiner::db
