#include "db/codecs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "db/bytes.hpp"
#include "db/crc32.hpp"

namespace tsteiner {

struct DesignSnapshotAccess {
  static std::vector<Cell>& cells(Design& d) { return d.cells_; }
  static std::vector<Pin>& pins(Design& d) { return d.pins_; }
  static std::vector<Net>& nets(Design& d) { return d.nets_; }
};

}  // namespace tsteiner

namespace tsteiner::db {

namespace {

void put_lut(ByteWriter& w, const Lut2& lut) {
  w.f64_vec(lut.slew_axis());
  w.f64_vec(lut.load_axis());
  w.f64_vec(lut.values());
}

std::optional<Lut2> take_lut(ByteReader& r) {
  std::vector<double> slews = r.f64_vec();
  std::vector<double> loads = r.f64_vec();
  std::vector<double> values = r.f64_vec();
  if (!r.ok() || slews.empty() || loads.empty() ||
      values.size() != slews.size() * loads.size()) {
    return std::nullopt;
  }
  for (double v : slews) {
    if (!std::isfinite(v)) return std::nullopt;
  }
  for (double v : loads) {
    if (!std::isfinite(v)) return std::nullopt;
  }
  if (!std::is_sorted(slews.begin(), slews.end()) ||
      !std::is_sorted(loads.begin(), loads.end())) {
    return std::nullopt;
  }
  return Lut2(std::move(slews), std::move(loads), std::move(values));
}

void put_point_i(ByteWriter& w, const PointI& p) {
  w.i64(p.x);
  w.i64(p.y);
}

PointI take_point_i(ByteReader& r) {
  PointI p;
  p.x = r.i64();
  p.y = r.i64();
  return p;
}

}  // namespace

std::vector<std::uint8_t> encode_library(const CellLibrary& lib) {
  ByteWriter w;
  w.f64(lib.wire_res_kohm_per_dbu());
  w.f64(lib.wire_cap_pf_per_dbu());
  w.f64(lib.via_res_kohm());
  w.u32(static_cast<std::uint32_t>(lib.num_types()));
  for (int i = 0; i < lib.num_types(); ++i) {
    const CellType& t = lib.type(i);
    w.str(t.name);
    w.i32(t.num_inputs);
    w.u8(t.is_register ? 1 : 0);
    w.f64(t.input_cap_pf);
    w.f64(t.drive_res_kohm);
    w.f64(t.area);
    w.f64(t.setup_ns);
    w.u32(static_cast<std::uint32_t>(t.arcs.size()));
    for (const TimingArc& arc : t.arcs) {
      w.i32(arc.from_input);
      put_lut(w, arc.delay);
      put_lut(w, arc.out_slew);
    }
  }
  return w.take();
}

std::optional<CellLibrary> decode_library(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  const double wire_res = r.f64();
  const double wire_cap = r.f64();
  const double via_res = r.f64();
  const std::uint32_t num_types = r.u32();
  if (!r.ok() || num_types > 100000) return std::nullopt;
  std::vector<CellType> types;
  types.reserve(num_types);
  for (std::uint32_t i = 0; i < num_types; ++i) {
    CellType t;
    t.name = r.str();
    t.num_inputs = r.i32();
    t.is_register = r.u8() != 0;
    t.input_cap_pf = r.f64();
    t.drive_res_kohm = r.f64();
    t.area = r.f64();
    t.setup_ns = r.f64();
    const std::uint32_t num_arcs = r.u32();
    if (!r.ok() || t.num_inputs < 0 || num_arcs > 1000) return std::nullopt;
    for (std::uint32_t a = 0; a < num_arcs; ++a) {
      TimingArc arc;
      arc.from_input = r.i32();
      auto delay = take_lut(r);
      auto out_slew = take_lut(r);
      if (!delay || !out_slew || arc.from_input < 0 || arc.from_input >= t.num_inputs) {
        return std::nullopt;
      }
      arc.delay = std::move(*delay);
      arc.out_slew = std::move(*out_slew);
      t.arcs.push_back(std::move(arc));
    }
    types.push_back(std::move(t));
  }
  if (!r.done()) return std::nullopt;
  return CellLibrary::from_parts(std::move(types), wire_res, wire_cap, via_res);
}

std::uint32_t library_fingerprint(const CellLibrary& lib) {
  return crc32(encode_library(lib));
}

std::vector<std::uint8_t> encode_design(const BenchmarkSpec& spec, const Design& design) {
  ByteWriter w;
  w.str(spec.name);
  w.i32(spec.target_cells);
  w.i32(spec.endpoints);
  w.u8(spec.is_training ? 1 : 0);
  w.u64(spec.seed);

  w.str(design.name());
  put_point_i(w, design.die().lo);
  put_point_i(w, design.die().hi);
  w.f64(design.clock_period());

  w.u32(static_cast<std::uint32_t>(design.cells().size()));
  for (const Cell& c : design.cells()) {
    w.i32(c.type);
    put_point_i(w, c.pos);
    w.i32_vec(c.input_pins);
    w.i32(c.output_pin);
    w.str(c.name);
  }
  w.u32(static_cast<std::uint32_t>(design.pins().size()));
  for (const Pin& p : design.pins()) {
    w.u8(static_cast<std::uint8_t>(p.kind));
    w.i32(p.cell);
    w.i32(p.net);
    w.i32(p.input_slot);
    put_point_i(w, p.port_pos);
  }
  w.u32(static_cast<std::uint32_t>(design.nets().size()));
  for (const Net& n : design.nets()) {
    w.i32(n.driver_pin);
    w.i32_vec(n.sink_pins);
    w.str(n.name);
  }
  return w.take();
}

std::optional<DecodedDesign> decode_design(const std::uint8_t* data, std::size_t size,
                                           const CellLibrary& library) {
  ByteReader r(data, size);
  BenchmarkSpec spec;
  spec.name = r.str();
  spec.target_cells = r.i32();
  spec.endpoints = r.i32();
  spec.is_training = r.u8() != 0;
  spec.seed = r.u64();

  std::string design_name = r.str();
  if (!r.ok()) return std::nullopt;
  Design design(std::move(design_name), &library);
  RectI die;
  die.lo = take_point_i(r);
  die.hi = take_point_i(r);
  design.set_die(die);
  design.set_clock_period(r.f64());

  const std::uint32_t num_cells = r.u32();
  if (!r.ok() || num_cells > r.remaining()) return std::nullopt;
  std::vector<Cell>& cells = DesignSnapshotAccess::cells(design);
  cells.reserve(num_cells);
  for (std::uint32_t i = 0; i < num_cells; ++i) {
    Cell c;
    c.id = static_cast<int>(i);
    c.type = r.i32();
    c.pos = take_point_i(r);
    c.input_pins = r.i32_vec();
    c.output_pin = r.i32();
    c.name = r.str();
    if (!r.ok() || c.type < 0 || c.type >= library.num_types()) return std::nullopt;
    cells.push_back(std::move(c));
  }

  const std::uint32_t num_pins = r.u32();
  if (!r.ok() || num_pins > r.remaining()) return std::nullopt;
  std::vector<Pin>& pins = DesignSnapshotAccess::pins(design);
  pins.reserve(num_pins);
  for (std::uint32_t i = 0; i < num_pins; ++i) {
    Pin p;
    p.id = static_cast<int>(i);
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(PinKind::kPrimaryOutput)) return std::nullopt;
    p.kind = static_cast<PinKind>(kind);
    p.cell = r.i32();
    p.net = r.i32();
    p.input_slot = r.i32();
    p.port_pos = take_point_i(r);
    if (!r.ok() || p.cell < -1 || p.cell >= static_cast<int>(num_cells)) return std::nullopt;
    pins.push_back(p);
  }

  const std::uint32_t num_nets = r.u32();
  if (!r.ok() || num_nets > r.remaining()) return std::nullopt;
  std::vector<Net>& nets = DesignSnapshotAccess::nets(design);
  nets.reserve(num_nets);
  for (std::uint32_t i = 0; i < num_nets; ++i) {
    Net n;
    n.id = static_cast<int>(i);
    n.driver_pin = r.i32();
    n.sink_pins = r.i32_vec();
    n.name = r.str();
    if (!r.ok() || n.driver_pin < 0 || n.driver_pin >= static_cast<int>(num_pins)) {
      return std::nullopt;
    }
    for (int s : n.sink_pins) {
      if (s < 0 || s >= static_cast<int>(num_pins)) return std::nullopt;
    }
    nets.push_back(std::move(n));
  }
  if (!r.done()) return std::nullopt;

  // Per-cell pin references, then the full structural invariant (driver/sink
  // cross references, connected inputs, cells inside the die, acyclicity).
  for (const Cell& c : design.cells()) {
    if (c.output_pin < 0 || c.output_pin >= static_cast<int>(num_pins)) return std::nullopt;
    for (int ip : c.input_pins) {
      if (ip < 0 || ip >= static_cast<int>(num_pins)) return std::nullopt;
    }
  }
  try {
    design.validate();
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  return DecodedDesign{std::move(spec), std::move(design)};
}

std::vector<std::uint8_t> encode_forest(const SteinerForest& forest) {
  ByteWriter w;
  w.u64(forest.net_to_tree.size());
  w.u32(static_cast<std::uint32_t>(forest.trees.size()));
  for (const SteinerTree& t : forest.trees) {
    w.i32(t.net);
    w.i32(t.driver_node);
    w.u32(static_cast<std::uint32_t>(t.nodes.size()));
    w.u32(static_cast<std::uint32_t>(t.edges.size()));
    for (const SteinerNode& n : t.nodes) {
      w.i32(n.pin);
      w.f64(n.pos.x);
      w.f64(n.pos.y);
    }
    for (const SteinerEdge& e : t.edges) {
      w.i32(e.a);
      w.i32(e.b);
    }
  }
  return w.take();
}

std::optional<SteinerForest> decode_forest(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  const std::uint64_t num_nets = r.u64();
  const std::uint32_t num_trees = r.u32();
  if (!r.ok() || num_nets > (1u << 30) || num_trees > num_nets) return std::nullopt;
  SteinerForest f;
  f.net_to_tree.assign(static_cast<std::size_t>(num_nets), -1);
  f.trees.reserve(num_trees);
  for (std::uint32_t ti = 0; ti < num_trees; ++ti) {
    SteinerTree tree;
    tree.net = r.i32();
    tree.driver_node = r.i32();
    const std::uint32_t num_nodes = r.u32();
    const std::uint32_t num_edges = r.u32();
    if (!r.ok() || tree.net < 0 || tree.net >= static_cast<int>(num_nets) ||
        num_nodes > r.remaining() || f.net_to_tree[static_cast<std::size_t>(tree.net)] != -1) {
      return std::nullopt;
    }
    tree.nodes.reserve(num_nodes);
    for (std::uint32_t n = 0; n < num_nodes; ++n) {
      SteinerNode node;
      node.pin = r.i32();
      node.pos.x = r.f64();
      node.pos.y = r.f64();
      if (!r.ok() || node.pin < -1 || !std::isfinite(node.pos.x) ||
          !std::isfinite(node.pos.y)) {
        return std::nullopt;
      }
      tree.nodes.push_back(node);
    }
    if (num_edges > r.remaining()) return std::nullopt;
    tree.edges.reserve(num_edges);
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      SteinerEdge edge;
      edge.a = r.i32();
      edge.b = r.i32();
      if (!r.ok() || edge.a < 0 || edge.b < 0 || edge.a >= static_cast<int>(num_nodes) ||
          edge.b >= static_cast<int>(num_nodes)) {
        return std::nullopt;
      }
      tree.edges.push_back(edge);
    }
    if (!tree.is_valid_tree()) return std::nullopt;
    f.net_to_tree[static_cast<std::size_t>(tree.net)] = static_cast<int>(f.trees.size());
    f.trees.push_back(std::move(tree));
  }
  if (!r.done()) return std::nullopt;
  f.build_movable_index();
  return f;
}

}  // namespace tsteiner::db
