#include "util/table.hpp"

#include <cstdio>
#include <sstream>

namespace tsteiner {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace tsteiner
