#include "util/svg.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace tsteiner {

SvgWriter::SvgWriter(double x0, double y0, double x1, double y1, double scale)
    : x0_(x0), y0_(y0), y1_(y1), scale_(scale) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" "
                "viewBox=\"%.3f %.3f %.3f %.3f\">\n",
                (x1 - x0) * scale_, (y1 - y0) * scale_, x0, y0, x1 - x0, y1 - y0);
  header_ = buf;
}

void SvgWriter::rect(double x, double y, double w, double h, const std::string& fill,
                     double opacity) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "<rect x=\"%.3f\" y=\"%.3f\" width=\"%.3f\" height=\"%.3f\" fill=\"%s\" "
                "fill-opacity=\"%.3f\"/>\n",
                x, flip(y) - h, w, h, fill.c_str(), opacity);
  body_ << buf;
}

void SvgWriter::line(double x1, double y1, double x2, double y2, const std::string& stroke,
                     double width) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "<line x1=\"%.3f\" y1=\"%.3f\" x2=\"%.3f\" y2=\"%.3f\" stroke=\"%s\" "
                "stroke-width=\"%.3f\"/>\n",
                x1, flip(y1), x2, flip(y2), stroke.c_str(), width);
  body_ << buf;
}

void SvgWriter::circle(double cx, double cy, double r, const std::string& fill) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "<circle cx=\"%.3f\" cy=\"%.3f\" r=\"%.3f\" fill=\"%s\"/>\n",
                cx, flip(cy), r, fill.c_str());
  body_ << buf;
}

void SvgWriter::text(double x, double y, const std::string& content, double size) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "<text x=\"%.3f\" y=\"%.3f\" font-size=\"%.1f\">", x,
                flip(y), size);
  body_ << buf << content << "</text>\n";
}

std::string SvgWriter::heat_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // green (120 deg) -> red (0 deg) in HSL, rendered as rgb.
  const double hue = 120.0 * (1.0 - t);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "hsl(%.0f,85%%,50%%)", hue);
  return buf;
}

std::string SvgWriter::finish() { return header_ + body_.str() + "</svg>\n"; }

bool SvgWriter::write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << finish();
  return static_cast<bool>(out);
}

}  // namespace tsteiner
