#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "util/parallel.hpp"

namespace tsteiner {

namespace {

std::atomic<int> g_level = [] {
  if (const char* env = std::getenv("TSTEINER_LOG")) {
    const int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  return static_cast<int>(LogLevel::kInfo);
}();

std::mutex& log_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

// Monotonic seconds since the first log call, for the verbose/debug prefix.
double log_uptime_s() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

/// Per-thread attribution tag (see ScopedLogTag). A plain thread_local
/// std::string would run non-trivial destructors at thread exit while the
/// pool may still be logging; a leaked pointer per thread avoids any
/// shutdown-order hazard (threads are few and long-lived).
std::string& thread_log_tag() {
  thread_local std::string* tag = new std::string();
  return *tag;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_tag(const std::string& tag) { thread_log_tag() = tag; }

const std::string& log_tag() { return thread_log_tag(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;

  // Format the whole line (prefix + message + newline) into one buffer and
  // emit it with a single fwrite under a mutex, so concurrent pool workers
  // cannot interleave fragments of each other's lines.
  char stack_buf[1024];
  std::vector<char> heap_buf;
  char* buf = stack_buf;
  std::size_t cap = sizeof(stack_buf);

  std::size_t prefix_len = 0;
  const std::string& tag = thread_log_tag();
  if (!tag.empty()) {
    const int n = std::snprintf(buf, cap, "[%9.3f t%d %s] ", log_uptime_s(),
                                parallel_worker_index(), tag.c_str());
    prefix_len = n > 0 ? std::min(static_cast<std::size_t>(n), cap - 1) : 0;
  } else if (static_cast<int>(level) >= static_cast<int>(LogLevel::kVerbose)) {
    const int n = std::snprintf(buf, cap, "[%9.3f t%d] ", log_uptime_s(),
                                parallel_worker_index());
    prefix_len = n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  std::va_list args;
  va_start(args, fmt);
  int body_len = std::vsnprintf(buf + prefix_len, cap - prefix_len, fmt, args);
  va_end(args);
  if (body_len < 0) return;

  if (prefix_len + static_cast<std::size_t>(body_len) + 2 > cap) {
    cap = prefix_len + static_cast<std::size_t>(body_len) + 2;
    heap_buf.resize(cap);
    std::memcpy(heap_buf.data(), buf, prefix_len);
    buf = heap_buf.data();
    std::va_list args2;
    va_start(args2, fmt);
    body_len = std::vsnprintf(buf + prefix_len, cap - prefix_len, fmt, args2);
    va_end(args2);
    if (body_len < 0) return;
  }

  std::size_t len = prefix_len + static_cast<std::size_t>(body_len);
  buf[len++] = '\n';

  std::lock_guard<std::mutex> lk(log_mutex());
  std::fwrite(buf, 1, len, stderr);
}

}  // namespace tsteiner
