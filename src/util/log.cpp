#include "util/log.hpp"

#include <cstdarg>
#include <cstdlib>

namespace tsteiner {

namespace {

LogLevel g_level = [] {
  if (const char* env = std::getenv("TSTEINER_LOG")) {
    const int v = std::atoi(env);
    if (v >= 0 && v <= 3) return static_cast<LogLevel>(v);
  }
  return LogLevel::kInfo;
}();

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace tsteiner
