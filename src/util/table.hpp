// ASCII table formatting for the bench harnesses. Each bench binary prints
// the same rows the paper's tables report; this keeps the rendering uniform.
#pragma once

#include <string>
#include <vector>

namespace tsteiner {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `prec` digits after the point.
  static std::string num(double v, int prec = 3);
  /// Integer with thousands kept plain (matches the paper's raw counts).
  static std::string num(long long v);

  /// Render with column alignment; first column left-aligned, rest right.
  std::string to_string() const;
  /// Render as CSV (no alignment).
  std::string to_csv() const;

  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tsteiner
