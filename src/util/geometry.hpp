// Basic 2-D geometry primitives shared across the physical-design substrates.
//
// All coordinates are in database units (DBU); one DBU corresponds to one
// placement-site-sized step in the synthetic technology used by this
// reproduction. Floating-point points are used wherever Steiner points move
// continuously during refinement; integer points are used for legalized /
// rounded data (placement sites, grid-graph cells).
#pragma once

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace tsteiner {

/// Integer point on the placement / routing grid.
struct PointI {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend auto operator<=>(const PointI&, const PointI&) = default;
};

/// Continuous point; Steiner points live here while being optimized.
struct PointF {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const PointF&, const PointF&) = default;
};

inline PointF to_f(const PointI& p) {
  return {static_cast<double>(p.x), static_cast<double>(p.y)};
}

/// Round-half-away-from-zero to the nearest integer point (the paper rounds
/// final Steiner positions in post-processing).
inline PointI round_to_i(const PointF& p) {
  return {static_cast<std::int64_t>(std::llround(p.x)),
          static_cast<std::int64_t>(std::llround(p.y))};
}

inline std::int64_t manhattan(const PointI& a, const PointI& b) {
  return std::llabs(a.x - b.x) + std::llabs(a.y - b.y);
}

inline double manhattan(const PointF& a, const PointF& b) {
  return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

inline double euclidean(const PointF& a, const PointF& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
struct RectI {
  PointI lo;
  PointI hi;

  std::int64_t width() const { return hi.x - lo.x; }
  std::int64_t height() const { return hi.y - lo.y; }
  std::int64_t half_perimeter() const { return width() + height(); }

  bool contains(const PointI& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  bool contains(const PointF& p) const {
    return p.x >= static_cast<double>(lo.x) && p.x <= static_cast<double>(hi.x) &&
           p.y >= static_cast<double>(lo.y) && p.y <= static_cast<double>(hi.y);
  }

  /// Grow to include p.
  void expand(const PointI& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  friend bool operator==(const RectI&, const RectI&) = default;
};

/// Clamp a continuous point into a closed integer rectangle; used to keep
/// Steiner-point moves inside the grid-graph boundary (paper, Fig. 4 note).
inline PointF clamp_into(const PointF& p, const RectI& box) {
  return {std::clamp(p.x, static_cast<double>(box.lo.x), static_cast<double>(box.hi.x)),
          std::clamp(p.y, static_cast<double>(box.lo.y), static_cast<double>(box.hi.y))};
}

inline std::ostream& operator<<(std::ostream& os, const PointI& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}
inline std::ostream& operator<<(std::ostream& os, const PointF& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}
inline std::ostream& operator<<(std::ostream& os, const RectI& r) {
  return os << '[' << r.lo << ' ' << r.hi << ']';
}

}  // namespace tsteiner
