// Deterministic random-number utilities.
//
// Every stochastic component of the reproduction (design generation, random
// Steiner disturbance, model initialization) draws from an explicitly seeded
// Rng so that benchmark tables are reproducible run-to-run. The constructor
// deliberately has no default seed: every stream must be traceable to a
// caller-chosen 64-bit value, which is what lets the verification harness
// (src/verify) replay any failing fuzz case from its printed seed alone.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace tsteiner {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// SplitMix64 mix step: derives decorrelated child seeds from (seed, index)
  /// pairs — the scheme CaseGen uses so case k of run seed S is always the
  /// same design, independent of which oracles ran before it.
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t index = 0) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Geometric-ish fanout sampler: returns >= 1, heavy-tailed, mean ~ mean.
  std::int64_t fanout(double mean) {
    const double p = 1.0 / std::max(1.0, mean);
    std::int64_t v = 1 + std::geometric_distribution<std::int64_t>(p)(engine_);
    return v;
  }

  /// Pick a uniformly random index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  /// Derive an independent child stream (stable across platforms).
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tsteiner
