// Wall-clock timing for the Table IV runtime breakdown.
#pragma once

#include <chrono>

namespace tsteiner {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations (TSteiner / global route / detailed
/// route) the way Table IV splits the flow runtime.
struct RuntimeBreakdown {
  double tsteiner_s = 0.0;
  double global_route_s = 0.0;
  double detailed_route_s = 0.0;
  double sta_s = 0.0;

  double total() const { return tsteiner_s + global_route_s + detailed_route_s + sta_s; }
};

}  // namespace tsteiner
