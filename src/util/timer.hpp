// Wall-clock timing for the Table IV runtime breakdown.
#pragma once

#include <chrono>

#include "util/parallel.hpp"

namespace tsteiner {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Wall time plus total CPU-seconds for one flow phase. busy_s counts the
/// calling thread's wall time plus every pool worker-second spent inside the
/// phase, so utilization() reads as "effective threads": ~1.0 for a serial
/// phase, approaching the pool width for a well-parallelized one. This is
/// what lets the Table-IV benches report serial vs. parallel wall time
/// without any per-loop instrumentation.
struct PhaseStat {
  double wall_s = 0.0;
  double busy_s = 0.0;

  double utilization() const { return wall_s > 1e-12 ? busy_s / wall_s : 1.0; }
};

/// RAII phase timer: on destruction adds the elapsed wall time and the pool
/// busy-time delta to `stat`. (obs::ScopedPhase wraps the same accumulation
/// with a trace span and run-report feed; prefer it in flow-level code.)
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseStat& stat) : stat_(stat), busy0_ns_(parallel_busy_ns()) {}
  ~ScopedTimer() {
    const double wall = timer_.seconds();
    stat_.wall_s += wall;
    stat_.busy_s += wall + static_cast<double>(parallel_busy_ns() - busy0_ns_) * 1e-9;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  WallTimer timer_;
  PhaseStat& stat_;
  std::uint64_t busy0_ns_;
};

/// Accumulates named phase durations (TSteiner / global route / detailed
/// route) the way Table IV splits the flow runtime. The PhaseStat members
/// are the single source of truth; the historical `*_s()` wall-clock values
/// are accessors over them (they used to be independently-accumulated
/// doubles, which could drift from the PhaseStat twins).
struct RuntimeBreakdown {
  PhaseStat tsteiner;
  PhaseStat global_route;
  PhaseStat detailed_route;
  PhaseStat sta;

  /// Split of the TSteiner phase's gradient work (not additional phases —
  /// both are part of tsteiner and excluded from total()): one-time autodiff
  /// program recording vs. the per-iteration in-place replays of the
  /// retained program (src/autodiff/program.hpp).
  PhaseStat grad_record;
  PhaseStat grad_replay;

  /// Legacy wall-clock views of the PhaseStat fields above.
  double tsteiner_s() const { return tsteiner.wall_s; }
  double global_route_s() const { return global_route.wall_s; }
  double detailed_route_s() const { return detailed_route.wall_s; }
  double sta_s() const { return sta.wall_s; }

  double total() const {
    return tsteiner_s() + global_route_s() + detailed_route_s() + sta_s();
  }
};

}  // namespace tsteiner
