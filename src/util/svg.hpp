// Minimal SVG writer used by the visualization helpers. Coordinates are in
// user units; the canvas is sized from the viewbox given at construction.
#pragma once

#include <sstream>
#include <string>

namespace tsteiner {

class SvgWriter {
 public:
  /// Viewbox [x0, x1] x [y0, y1]; rendered at `scale` px per unit. The y
  /// axis is flipped so that y grows upward (chip convention).
  SvgWriter(double x0, double y0, double x1, double y1, double scale = 4.0);

  void rect(double x, double y, double w, double h, const std::string& fill,
            double opacity = 1.0);
  void line(double x1, double y1, double x2, double y2, const std::string& stroke,
            double width = 0.5);
  void circle(double cx, double cy, double r, const std::string& fill);
  void text(double x, double y, const std::string& content, double size = 8.0);

  /// Heat color (green -> yellow -> red) for t in [0, 1].
  static std::string heat_color(double t);

  std::string finish();
  bool write_file(const std::string& path);

 private:
  double flip(double y) const { return y1_ - (y - y0_); }

  double x0_, y0_, y1_;
  double scale_;
  std::ostringstream body_;
  std::string header_;
};

}  // namespace tsteiner
