#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsteiner {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double r2_score(std::span<const double> ground_truth, std::span<const double> predicted) {
  assert(ground_truth.size() == predicted.size());
  assert(!ground_truth.empty());
  const double g_bar = mean(ground_truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < ground_truth.size(); ++i) {
    const double r = ground_truth[i] - predicted[i];
    ss_res += r * r;
    const double d = ground_truth[i] - g_bar;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins) : lo(lo_), hi(hi_), counts(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
}

void Histogram::add(double x) {
  const double t = (x - lo) / (hi - lo);
  auto i = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(i)];
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

double Histogram::bucket_center(std::size_t i) const {
  const double w = (hi - lo) / static_cast<double>(counts.size());
  return lo + (static_cast<double>(i) + 0.5) * w;
}

double Histogram::bucket_edge(std::size_t i) const {
  const double w = (hi - lo) / static_cast<double>(counts.size());
  return i == counts.size() ? hi : lo + static_cast<double>(i) * w;
}

double Histogram::percentile(double q) const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  // Target rank in [0, n): the same nearest-rank-with-interpolation scheme as
  // the sample-based percentile() above, applied to the cumulative counts.
  const double pos = std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(n - 1);
  const double target = pos + 0.5;  // rank measured in "samples from the left"
  std::size_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts[i];
    if (static_cast<double>(cum) >= target) {
      const double frac = (target - before) / static_cast<double>(counts[i]);
      return bucket_edge(i) + frac * (bucket_edge(i + 1) - bucket_edge(i));
    }
  }
  return hi;
}

}  // namespace tsteiner
