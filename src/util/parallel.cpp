#include "util/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace tsteiner {

namespace {

/// Set while the current thread is executing chunks of some job; parallel
/// calls made from inside a region run serially instead of re-entering the
/// pool.
thread_local bool tl_in_parallel_region = false;

/// 0 = not a pool thread; workers get 1..width-1 at spawn.
thread_local int tl_worker_index = 0;

std::atomic<std::uint64_t> g_busy_ns{0};

std::size_t default_width() {
  if (const char* env = std::getenv("TSTEINER_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

struct Job {
  detail::ChunkFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<int> active{0};
  std::atomic<int> worker_slots{0};  // how many pool workers may still join
  std::mutex err_mutex;
  std::exception_ptr error;
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t width() {
    std::lock_guard<std::mutex> lk(state_mutex_);
    return width_;
  }

  void set_width(std::size_t n) {
    std::lock_guard<std::mutex> run_lk(run_mutex_);
    stop_workers();
    std::lock_guard<std::mutex> lk(state_mutex_);
    width_ = n == 0 ? default_width() : n;
  }

  void run(std::size_t begin, std::size_t end, std::size_t grain, detail::ChunkFn fn,
           void* ctx, int max_threads) {
    grain = std::max<std::size_t>(1, grain);
    const std::size_t num_chunks = (end - begin + grain - 1) / grain;
    std::size_t w = width();
    if (max_threads > 0) w = std::min(w, static_cast<std::size_t>(max_threads));
    if (w <= 1 || num_chunks <= 1 || tl_in_parallel_region) {
      fn(ctx, begin, end);
      return;
    }

    // One job at a time; concurrent callers queue up here.
    std::lock_guard<std::mutex> run_lk(run_mutex_);
    ensure_workers();

    Job job;
    job.fn = fn;
    job.ctx = ctx;
    job.begin = begin;
    job.end = end;
    job.grain = grain;
    job.num_chunks = num_chunks;
    job.worker_slots.store(static_cast<int>(w) - 1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      job_ = &job;
      ++generation_;
    }
    cv_work_.notify_all();

    execute(job, /*is_worker=*/false);  // the caller is a participant too

    {
      std::unique_lock<std::mutex> lk(state_mutex_);
      cv_done_.wait(lk, [&] {
        return job.done.load(std::memory_order_acquire) == job.num_chunks &&
               job.active.load(std::memory_order_acquire) == 0;
      });
      job_ = nullptr;  // cleared under the lock: late workers see null
    }
    if (job.error) std::rethrow_exception(job.error);
  }

  std::uint64_t busy_ns() const { return g_busy_ns.load(std::memory_order_relaxed); }

 private:
  Pool() = default;
  ~Pool() { stop_workers(); }

  void ensure_workers() {
    std::size_t target;
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      target = width_ > 0 ? width_ - 1 : 0;
      shutdown_ = false;
    }
    while (workers_.size() < target) {
      const int index = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, index] {
        tl_worker_index = index;
        worker_loop();
      });
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(state_mutex_);
        cv_work_.wait(lk, [&] {
          return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
        });
        if (shutdown_) return;
        seen_generation = generation_;
        job = job_;
        if (job == nullptr) continue;
        if (job->worker_slots.fetch_sub(1, std::memory_order_relaxed) <= 0) continue;
        job->active.fetch_add(1, std::memory_order_acq_rel);  // registered under lock
      }
      execute(*job, /*is_worker=*/true);
      {
        // Deregister under the lock: the caller's completion predicate runs
        // under the same lock, so it cannot observe active == 0 — and destroy
        // the stack-allocated Job — until every access here has finished.
        std::lock_guard<std::mutex> lk(state_mutex_);
        const bool complete =
            job->done.load(std::memory_order_acquire) == job->num_chunks;
        if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1 && complete) {
          cv_done_.notify_all();
        }
      }
    }
  }

  /// Ticket loop: grab chunk indices until exhausted. Chunk boundaries are a
  /// pure function of (begin, end, grain), so which thread runs a chunk never
  /// affects what the chunk computes.
  void execute(Job& job, bool is_worker) {
    tl_in_parallel_region = true;
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t executed = 0;
    for (;;) {
      const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.num_chunks) break;
      const std::size_t lo = job.begin + c * job.grain;
      const std::size_t hi = std::min(job.end, lo + job.grain);
      try {
        job.fn(job.ctx, lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.err_mutex);
        if (!job.error) job.error = std::current_exception();
      }
      ++executed;
      job.done.fetch_add(1, std::memory_order_acq_rel);
    }
    tl_in_parallel_region = false;
    if (is_worker && executed > 0) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      g_busy_ns.fetch_add(static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
    }
    if (job.done.load(std::memory_order_acquire) == job.num_chunks) {
      // Wake the caller in case workers finished the tail while it waited.
      std::lock_guard<std::mutex> lk(state_mutex_);
      cv_done_.notify_all();
    }
  }

  std::mutex run_mutex_;    // serializes run() / set_width()
  std::mutex state_mutex_;  // guards job_, generation_, shutdown_, width_
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::size_t width_ = default_width();
};

}  // namespace

std::size_t parallel_threads() { return Pool::instance().width(); }

void set_parallel_threads(std::size_t n) { Pool::instance().set_width(n); }

int clamp_thread_request(int requested) { return requested < 0 ? 0 : requested; }

std::uint64_t parallel_busy_ns() { return Pool::instance().busy_ns(); }

int parallel_worker_index() { return tl_worker_index; }

namespace detail {
void run_chunks(std::size_t begin, std::size_t end, std::size_t grain, ChunkFn fn,
                void* ctx, int max_threads) {
  Pool::instance().run(begin, end, grain, fn, ctx, max_threads);
}
}  // namespace detail

}  // namespace tsteiner
