// Minimal leveled logger used by the flow and bench harnesses.
//
// Verbosity is controlled globally (set_log_level) and via the environment
// variable TSTEINER_LOG (0 = silent .. 3 = debug). Tests default to silent so
// ctest output stays readable.
//
// Emission is thread-safe: each call formats its complete line once and
// writes it with a single fwrite under a mutex, so lines from concurrent
// pool workers never interleave. Verbose/debug lines carry a
// "[<uptime-seconds> t<thread-index>]" prefix (monotonic clock since the
// first log call; thread index 0 = main, 1.. = pool workers as reported by
// parallel_worker_index()).
#pragma once

#include <cstdio>
#include <string>

namespace tsteiner {

enum class LogLevel : int { kSilent = 0, kInfo = 1, kVerbose = 2, kDebug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; message is emitted iff `level` <= current level.
void logf(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

#define TS_INFO(...) ::tsteiner::logf(::tsteiner::LogLevel::kInfo, __VA_ARGS__)
#define TS_VERBOSE(...) ::tsteiner::logf(::tsteiner::LogLevel::kVerbose, __VA_ARGS__)
#define TS_DEBUG(...) ::tsteiner::logf(::tsteiner::LogLevel::kDebug, __VA_ARGS__)

}  // namespace tsteiner
