// Minimal leveled logger used by the flow and bench harnesses.
//
// Verbosity is controlled globally (set_log_level) and via the environment
// variable TSTEINER_LOG (0 = silent .. 3 = debug). Tests default to silent so
// ctest output stays readable.
//
// Emission is thread-safe: each call formats its complete line once and
// writes it with a single fwrite under a mutex, so lines from concurrent
// pool workers never interleave. Verbose/debug lines carry a
// "[<uptime-seconds> t<thread-index>]" prefix (monotonic clock since the
// first log call; thread index 0 = main, 1.. = pool workers as reported by
// parallel_worker_index()).
//
// Multi-tenant attribution: a thread can install a short component/session
// tag (set_log_tag / ScopedLogTag) that is appended to the prefix of every
// line it emits — "[  1.234 t2 sess=s7] ..." — so interleaved per-session
// server logs stay attributable. The tag is thread-local; tagged lines are
// prefixed at every level (a tag upgrades kInfo lines to carry the prefix
// too, since attribution is the point of tagging).
#pragma once

#include <cstdio>
#include <string>

namespace tsteiner {

enum class LogLevel : int { kSilent = 0, kInfo = 1, kVerbose = 2, kDebug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Install a component/session tag for the calling thread ("" clears it).
/// The pointer is not retained — the string is copied.
void set_log_tag(const std::string& tag);
/// The calling thread's current tag ("" when none).
const std::string& log_tag();

/// RAII tag scope: installs `tag` for the calling thread, restores the
/// previous tag on destruction. Used by the serve dispatcher so every line a
/// request logs — including from code deep inside the flow — carries its
/// session id.
class ScopedLogTag {
 public:
  explicit ScopedLogTag(const std::string& tag) : prev_(log_tag()) { set_log_tag(tag); }
  ~ScopedLogTag() { set_log_tag(prev_); }
  ScopedLogTag(const ScopedLogTag&) = delete;
  ScopedLogTag& operator=(const ScopedLogTag&) = delete;

 private:
  std::string prev_;
};

/// printf-style logging; message is emitted iff `level` <= current level.
void logf(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

#define TS_INFO(...) ::tsteiner::logf(::tsteiner::LogLevel::kInfo, __VA_ARGS__)
#define TS_VERBOSE(...) ::tsteiner::logf(::tsteiner::LogLevel::kVerbose, __VA_ARGS__)
#define TS_DEBUG(...) ::tsteiner::logf(::tsteiner::LogLevel::kDebug, __VA_ARGS__)

}  // namespace tsteiner
