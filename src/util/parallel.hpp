// Process-wide deterministic thread pool shared by every parallel hot path
// (tape kernels, GNN level assembly, STA, routing, RSMT construction).
//
// Determinism contract: work is split into chunks whose boundaries depend
// only on (begin, end, grain) — never on the thread count — and
// parallel_reduce combines per-chunk partials in chunk order. Any kernel
// that writes disjoint slots per index, plus any reduction built on
// parallel_reduce, therefore produces bit-identical results whether the
// pool runs 1 or N threads. See docs/parallelism.md.
//
// The pool is lazily started on first use. Width comes from the
// TSTEINER_THREADS environment variable when set (>= 1), otherwise from
// std::thread::hardware_concurrency(). Calls made from inside a parallel
// region execute serially (no nested parallelism, no deadlock).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace tsteiner {

/// Current pool width (total concurrency including the calling thread).
std::size_t parallel_threads();

/// Override the pool width (testing / scaling benches). 0 restores the
/// TSTEINER_THREADS / hardware default. Must not be called from inside a
/// parallel region or concurrently with parallel work.
void set_parallel_threads(std::size_t n);

/// Normalize a user-facing thread-count request: negative values clamp to 0
/// (= pool default); 0 and positive values pass through. 1 means serial.
int clamp_thread_request(int requested);

/// Cumulative nanoseconds worker threads (excluding callers) have spent
/// executing chunks since process start. The delta across a phase, added to
/// the phase's wall time, approximates total CPU-seconds spent in it; see
/// PhaseStat in util/timer.hpp.
std::uint64_t parallel_busy_ns();

/// Stable pool index of the calling thread: 0 for any thread the pool did
/// not spawn (the main thread, callers participating in their own jobs),
/// 1..width-1 for pool workers. Used by the tracer and the logger so span
/// and log lines attribute work to a deterministic worker lane.
int parallel_worker_index();

namespace detail {
using ChunkFn = void (*)(void* ctx, std::size_t lo, std::size_t hi);
/// Run fn over [begin, end) split into ceil((end-begin)/grain) chunks.
/// max_threads > 0 caps the number of participating threads for this call.
void run_chunks(std::size_t begin, std::size_t end, std::size_t grain, ChunkFn fn,
                void* ctx, int max_threads);
}  // namespace detail

/// Invoke fn(lo, hi) on subranges that exactly cover [begin, end). fn must
/// only write state owned by indices in [lo, hi). `grain` is the maximum
/// subrange length handed to one invocation (also the unit of load
/// balancing); `max_threads` caps concurrency for this call (0 = pool
/// default, 1 = serial).
template <class Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, Fn&& fn,
                  int max_threads = 0) {
  if (begin >= end) return;
  using F = std::remove_reference_t<Fn>;
  detail::run_chunks(
      begin, end, grain,
      [](void* ctx, std::size_t lo, std::size_t hi) { (*static_cast<F*>(ctx))(lo, hi); },
      &fn, max_threads);
}

/// Deterministic reduction: map_chunk(lo, hi) -> T over fixed-grain chunks,
/// then an ordered left fold combine(acc, partial) in chunk order. The
/// result is bit-identical for any thread count (chunk boundaries and
/// combine order never depend on it). Note the chunked fold is not, in
/// general, bit-identical to an element-by-element serial fold — callers
/// that must preserve a legacy serial sum should parallel_for into a buffer
/// and fold it serially instead.
template <class T, class MapFn, class CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain, T identity,
                  MapFn&& map_chunk, CombineFn&& combine, int max_threads = 0) {
  if (begin >= end) return identity;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t num_chunks = (end - begin + g - 1) / g;
  std::vector<T> partials(num_chunks, identity);
  parallel_for(
      0, num_chunks, 1,
      [&](std::size_t clo, std::size_t chi) {
        for (std::size_t c = clo; c < chi; ++c) {
          const std::size_t lo = begin + c * g;
          partials[c] = map_chunk(lo, std::min(end, lo + g));
        }
      },
      max_threads);
  T acc = std::move(partials[0]);
  for (std::size_t c = 1; c < num_chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace tsteiner
