// Statistics helpers used by the prediction benches (R^2 score, Table III)
// and by the random-disturbance study (Fig. 2 histogram).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tsteiner {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// Coefficient of determination, Eq. (10) of the paper. Returns 1.0 for a
/// perfect fit; can be negative for fits worse than the mean predictor.
/// Precondition: same length, non-empty; a zero-variance ground truth yields
/// 1.0 when predictions are exact and 0.0 otherwise.
double r2_score(std::span<const double> ground_truth, std::span<const double> predicted);

/// Pearson correlation; 0 when either side has zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Linear-interpolated percentile, q in [0, 100].
double percentile(std::vector<double> xs, double q);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  Histogram(double lo_, double hi_, std::size_t bins);
  void add(double x);
  std::size_t total() const;
  /// Midpoint of bucket i.
  double bucket_center(std::size_t i) const;
  /// Lower/upper edge of bucket i (bucket_edge(counts.size()) == hi).
  double bucket_edge(std::size_t i) const;
  /// Rank-interpolated percentile over the bucket counts, q in [0, 100].
  /// Assumes samples are uniformly distributed within each bucket; exact in
  /// the sense of being a pure deterministic function of the bucket counts.
  /// Returns 0.0 on an empty histogram.
  double percentile(double q) const;
  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }
};

}  // namespace tsteiner
