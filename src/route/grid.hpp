// Global-routing grid graph (CUGR-style coarse grid).
//
// The die is tiled into gcells; horizontal and vertical gcell-boundary
// edges carry capacities and usage counts. The reproduction models the
// metal stack as one aggregated horizontal and one aggregated vertical
// resource per edge (a "3D-lite" model); capacities are self-calibrated
// from initial demand because the synthetic netlists lack the locality of
// the paper's placed OpenCores designs (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "util/geometry.hpp"

namespace tsteiner {

struct GCell {
  int x = 0;
  int y = 0;
  friend bool operator==(const GCell&, const GCell&) = default;
};

class GridGraph {
 public:
  /// Tiles `die` into gcells of `gcell_size` DBU (last row/column may be
  /// smaller). At least a 2x2 grid is always created.
  GridGraph(RectI die, std::int64_t gcell_size);
  /// Trivial 2x2 grid; placeholder until a real route result replaces it.
  GridGraph() : GridGraph(RectI{{0, 0}, {1, 1}}, 1) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::int64_t gcell_size() const { return gcell_size_; }
  const RectI& die() const { return die_; }

  GCell gcell_at(PointI p) const;
  GCell gcell_at(PointF p) const;
  /// Center of a gcell in DBU.
  PointI gcell_center(GCell g) const;

  // -- edge indexing -------------------------------------------------------
  // Horizontal edge h(x, y): between gcells (x,y) and (x+1,y); x in
  // [0, nx-2], y in [0, ny-1]. Vertical edge v(x, y): between (x,y) and
  // (x,y+1); x in [0, nx-1], y in [0, ny-2].
  std::size_t h_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_ - 1) +
           static_cast<std::size_t>(x);
  }
  std::size_t v_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(x);
  }
  std::size_t num_h_edges() const { return h_usage_.size(); }
  std::size_t num_v_edges() const { return v_usage_.size(); }

  double h_usage(int x, int y) const { return h_usage_[h_index(x, y)]; }
  double v_usage(int x, int y) const { return v_usage_[v_index(x, y)]; }
  double h_capacity() const { return h_cap_; }
  double v_capacity() const { return v_cap_; }

  void add_h_usage(int x, int y, double delta) { h_usage_[h_index(x, y)] += delta; }
  void add_v_usage(int x, int y, double delta) { v_usage_[v_index(x, y)] += delta; }

  double h_history(int x, int y) const { return h_hist_[h_index(x, y)]; }
  double v_history(int x, int y) const { return v_hist_[v_index(x, y)]; }
  void add_h_history(int x, int y, double delta) { h_hist_[h_index(x, y)] += delta; }
  void add_v_history(int x, int y, double delta) { v_hist_[v_index(x, y)] += delta; }
  /// Exact overwrite (incremental replay resets charged edges to the
  /// fresh-start value; an additive undo could leave float residue).
  void set_h_history(int x, int y, double value) { h_hist_[h_index(x, y)] = value; }
  void set_v_history(int x, int y, double value) { v_hist_[v_index(x, y)] = value; }

  /// Set uniform capacities (resource calibration happens in the router).
  void set_capacities(double h_cap, double v_cap);

  void clear_usage();
  void clear_history();
  /// Restore the freshly-constructed state (zero usage/history, unit
  /// capacities) so a routing pass can be replayed on an existing grid and
  /// produce bit-identical results to routing on a new GridGraph.
  void reset_routing_state();

  /// Total overflow: sum over edges of max(0, usage - capacity).
  double total_overflow() const;
  double max_overflow() const;
  /// Number of edges with usage > capacity.
  long long num_overflowed_edges() const;

  /// Normalized congestion (usage / capacity) of the edge crossed when
  /// stepping from gcell a to adjacent gcell b; 0 for a == b.
  double congestion_between(GCell a, GCell b) const;

 private:
  RectI die_;
  std::int64_t gcell_size_;
  int nx_ = 0;
  int ny_ = 0;
  double h_cap_ = 1.0;
  double v_cap_ = 1.0;
  std::vector<double> h_usage_;
  std::vector<double> v_usage_;
  std::vector<double> h_hist_;
  std::vector<double> v_hist_;
};

}  // namespace tsteiner
