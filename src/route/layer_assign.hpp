// Metal-layer assignment (the paper's related work [6] CATALYST / [7] TILA
// line): distribute routed connections across a layer stack whose upper,
// thick layers are much faster (lower RC) but scarce.
//
// Two policies are provided:
//   * kWirelength — classic: longest connections get the fast layers
//     (maximizes total RC reduction, timing-blind);
//   * kTimingDriven — connections are prioritized by the criticality of
//     their net's worst sink slack (from a baseline STA), so critical paths
//     get the fast metal even when short.
// The result maps each connection to a layer pair whose R/C multipliers the
// RC extractor consumes.
#pragma once

#include <vector>

#include "route/global_router.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

/// One H/V layer pair of the stack.
struct LayerPair {
  const char* name = "";
  double r_mult = 1.0;  ///< resistance multiplier vs the default wire
  double c_mult = 1.0;  ///< capacitance multiplier
  /// Fraction of total routed wirelength this pair can carry.
  double capacity_share = 1.0;
};

/// Default 3-pair stack: local (thin, slow), intermediate, global (thick,
/// fast, scarce).
std::vector<LayerPair> default_layer_stack();

enum class LayerPolicy { kWirelength, kTimingDriven };

struct LayerAssignment {
  /// Layer-pair index per connection (aligned with gr.connections).
  std::vector<int> layer_of_connection;
  std::vector<LayerPair> stack;

  double r_mult(int connection) const {
    return stack[static_cast<std::size_t>(
                     layer_of_connection[static_cast<std::size_t>(connection)])]
        .r_mult;
  }
  double c_mult(int connection) const {
    return stack[static_cast<std::size_t>(
                     layer_of_connection[static_cast<std::size_t>(connection)])]
        .c_mult;
  }
  /// Extra vias incurred by layer switches along each tree's edges.
  long long num_layer_vias = 0;
};

/// `criticality` (optional, required for kTimingDriven): one value per
/// connection, larger = more critical (e.g. -slack of the net's worst sink).
LayerAssignment assign_layers(const SteinerForest& forest, const GlobalRouteResult& gr,
                              LayerPolicy policy,
                              const std::vector<double>* criticality = nullptr,
                              std::vector<LayerPair> stack = default_layer_stack());

/// Convenience: per-connection criticality from a sign-off STA result
/// (worst endpoint-slack-driven: -min slack over the net's sinks' arrival
/// cone is expensive; this uses the net's sinks' own slacks where the sink
/// is an endpoint, else the sink arrival as a proxy).
std::vector<double> connection_criticality(const Design& design, const SteinerForest& forest,
                                           const GlobalRouteResult& gr,
                                           const std::vector<double>& pin_arrival);

}  // namespace tsteiner
