#include "route/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tsteiner {

GridGraph::GridGraph(RectI die, std::int64_t gcell_size)
    : die_(die), gcell_size_(gcell_size) {
  if (gcell_size <= 0) throw std::runtime_error("gcell size must be positive");
  nx_ = std::max<int>(2, static_cast<int>((die.width() + gcell_size - 1) / gcell_size) + 1);
  ny_ = std::max<int>(2, static_cast<int>((die.height() + gcell_size - 1) / gcell_size) + 1);
  h_usage_.assign(static_cast<std::size_t>(nx_ - 1) * static_cast<std::size_t>(ny_), 0.0);
  v_usage_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_ - 1), 0.0);
  h_hist_.assign(h_usage_.size(), 0.0);
  v_hist_.assign(v_usage_.size(), 0.0);
}

GCell GridGraph::gcell_at(PointI p) const {
  const std::int64_t dx = std::clamp(p.x - die_.lo.x, std::int64_t{0}, die_.width());
  const std::int64_t dy = std::clamp(p.y - die_.lo.y, std::int64_t{0}, die_.height());
  GCell g{static_cast<int>(dx / gcell_size_), static_cast<int>(dy / gcell_size_)};
  g.x = std::min(g.x, nx_ - 1);
  g.y = std::min(g.y, ny_ - 1);
  return g;
}

GCell GridGraph::gcell_at(PointF p) const {
  return gcell_at(PointI{static_cast<std::int64_t>(std::llround(p.x)),
                         static_cast<std::int64_t>(std::llround(p.y))});
}

PointI GridGraph::gcell_center(GCell g) const {
  return {die_.lo.x + static_cast<std::int64_t>(g.x) * gcell_size_ + gcell_size_ / 2,
          die_.lo.y + static_cast<std::int64_t>(g.y) * gcell_size_ + gcell_size_ / 2};
}

void GridGraph::set_capacities(double h_cap, double v_cap) {
  assert(h_cap > 0.0 && v_cap > 0.0);
  h_cap_ = h_cap;
  v_cap_ = v_cap;
}

void GridGraph::clear_usage() {
  std::fill(h_usage_.begin(), h_usage_.end(), 0.0);
  std::fill(v_usage_.begin(), v_usage_.end(), 0.0);
}

void GridGraph::clear_history() {
  std::fill(h_hist_.begin(), h_hist_.end(), 0.0);
  std::fill(v_hist_.begin(), v_hist_.end(), 0.0);
}

void GridGraph::reset_routing_state() {
  clear_usage();
  clear_history();
  h_cap_ = 1.0;
  v_cap_ = 1.0;
}

double GridGraph::total_overflow() const {
  double of = 0.0;
  for (double u : h_usage_) of += std::max(0.0, u - h_cap_);
  for (double u : v_usage_) of += std::max(0.0, u - v_cap_);
  return of;
}

double GridGraph::max_overflow() const {
  double of = 0.0;
  for (double u : h_usage_) of = std::max(of, u - h_cap_);
  for (double u : v_usage_) of = std::max(of, u - v_cap_);
  return std::max(0.0, of);
}

long long GridGraph::num_overflowed_edges() const {
  long long n = 0;
  for (double u : h_usage_) n += u > h_cap_ ? 1 : 0;
  for (double u : v_usage_) n += u > v_cap_ ? 1 : 0;
  return n;
}

double GridGraph::congestion_between(GCell a, GCell b) const {
  if (a == b) return 0.0;
  if (a.y == b.y) {
    const int x = std::min(a.x, b.x);
    return h_usage(x, a.y) / h_cap_;
  }
  if (a.x == b.x) {
    const int y = std::min(a.y, b.y);
    return v_usage(a.x, y) / v_cap_;
  }
  throw std::runtime_error("congestion_between: gcells not adjacent");
}

}  // namespace tsteiner
