// Global router (CUGR substitute).
//
// Routes every two-pin edge of the Steiner forest on the gcell grid:
// congestion-aware L-pattern routing first, then negotiated-congestion
// rip-up-and-reroute (maze/Dijkstra with history costs) for connections
// crossing overflowed edges. Capacities are calibrated from the initial
// demand of the *baseline* forest and can be pinned via RouterOptions so a
// TSteiner-refined forest is routed against identical resources.
#pragma once

#include <vector>

#include "route/grid.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

struct RouterOptions {
  std::int64_t gcell_size = 8;
  /// Capacity = capacity_factor * p90(initial usage), at least min_capacity.
  /// Slightly below 1.0 keeps realistic congestion pressure: hotspots must
  /// negotiate, the DR surrogate sees violations to repair, and Steiner
  /// positions influence sign-off through detours — the regime the paper
  /// operates in.
  double capacity_factor = 0.92;
  double min_capacity = 4.0;
  /// Fixed capacities override calibration when > 0.
  double fixed_h_cap = 0.0;
  double fixed_v_cap = 0.0;
  int rrr_iterations = 4;
  double history_increment = 1.0;
  int maze_margin = 12;  ///< gcells added around a connection's bbox
};

/// One routed two-pin connection (tree edge -> gcell path).
struct RoutedConnection {
  int tree = -1;
  int edge = -1;
  std::vector<GCell> path;  ///< adjacent gcells, size >= 1

  int num_bends() const;
  /// Routed length in DBU given the grid's gcell size (straight-line within
  /// a single gcell).
  double length_dbu(const GridGraph& grid, const PointF& a, const PointF& b) const;
};

struct GlobalRouteResult {
  GridGraph grid;
  std::vector<RoutedConnection> connections;
  /// conn_of_edge[tree][edge] -> index into `connections`.
  std::vector<std::vector<int>> conn_of_edge;
  double wirelength_dbu = 0.0;
  double total_overflow = 0.0;
  long long overflowed_edges = 0;
  int rrr_rounds_used = 0;
  double calibrated_h_cap = 0.0;
  double calibrated_v_cap = 0.0;
};

GlobalRouteResult global_route(const Design& design, const SteinerForest& forest,
                               const RouterOptions& options = {});

}  // namespace tsteiner
