// Global router (CUGR substitute).
//
// Routes every two-pin edge of the Steiner forest on the gcell grid:
// congestion-aware L-pattern routing first, then negotiated-congestion
// rip-up-and-reroute (maze/Dijkstra with history costs) for connections
// crossing overflowed edges. Capacities are calibrated from the initial
// demand of the *baseline* forest and can be pinned via RouterOptions so a
// TSteiner-refined forest is routed against identical resources.
#pragma once

#include <vector>

#include "route/grid.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

struct RouterOptions {
  std::int64_t gcell_size = 8;
  /// Capacity = capacity_factor * p90(initial usage), at least min_capacity.
  /// Slightly below 1.0 keeps realistic congestion pressure: hotspots must
  /// negotiate, the DR surrogate sees violations to repair, and Steiner
  /// positions influence sign-off through detours — the regime the paper
  /// operates in.
  double capacity_factor = 0.92;
  double min_capacity = 4.0;
  /// Fixed capacities override calibration when > 0.
  double fixed_h_cap = 0.0;
  double fixed_v_cap = 0.0;
  int rrr_iterations = 4;
  double history_increment = 1.0;
  int maze_margin = 12;  ///< gcells added around a connection's bbox
};

/// One routed two-pin connection (tree edge -> gcell path).
struct RoutedConnection {
  int tree = -1;
  int edge = -1;
  std::vector<GCell> path;  ///< adjacent gcells, size >= 1

  int num_bends() const;
  /// Routed length in DBU given the grid's gcell size (straight-line within
  /// a single gcell).
  double length_dbu(const GridGraph& grid, const PointF& a, const PointF& b) const;
};

struct GlobalRouteResult {
  GridGraph grid;
  std::vector<RoutedConnection> connections;
  /// conn_of_edge[tree][edge] -> index into `connections`.
  std::vector<std::vector<int>> conn_of_edge;
  double wirelength_dbu = 0.0;
  double total_overflow = 0.0;
  long long overflowed_edges = 0;
  int rrr_rounds_used = 0;
  double calibrated_h_cap = 0.0;
  double calibrated_v_cap = 0.0;
};

GlobalRouteResult global_route(const Design& design, const SteinerForest& forest,
                               const RouterOptions& options = {});

/// Stateful global router for incremental sign-off.
///
/// `route_full` runs the exact algorithm behind `global_route` while
/// recording a replay cache (per-connection gcell endpoints, post-pattern
/// base paths, and every negotiated maze reroute). `update` then re-runs the
/// same algorithm as a *patching replay*: instead of rebuilding the routing
/// field from zero, it starts from the previous run's final grid and patches
/// it back to this run's exact post-pattern state — history cleared,
/// previously-mazed connections ripped back to their base paths, and moved
/// connections re-pattern-routed (usage counts are integers, so ±1 patching
/// in any order is exact). The negotiation rounds then recompute all
/// order-dependent work for real (capacity calibration, history charging,
/// victim selection, accounting), and only the expensive maze searches reuse
/// cached results — and only when an exact per-edge field delta proves the
/// maze window reads state bit-identical to the previous run's at the
/// aligned point of the operation sequence. The replayed result is therefore
/// bit-identical to a fresh `global_route` of the same forest, at a cost of
/// O(grid) + O(moved + mazed) instead of O(connections).
///
/// Dirty-net contract: callers must flag every tree whose node geometry
/// changed since the previous route (`tree_dirty`). Gcell endpoints of
/// connections in unflagged trees are reused from the cache, so an
/// undeclared move is *not* healed — that property is what the
/// `signoff-incremental` mutation self-check relies on.
class GlobalRouterState {
 public:
  GlobalRouterState(const Design* design, const RouterOptions& options);

  /// Full route of `forest`; rebuilds the replay cache from scratch.
  const GlobalRouteResult& route_full(const SteinerForest& forest);

  /// Memoized replay against the cached previous run. `tree_dirty` holds one
  /// flag per tree in `forest` (trees whose geometry moved). Requires a
  /// prior `route_full` and an unchanged forest topology (tree/edge counts);
  /// falls back to `route_full` otherwise.
  const GlobalRouteResult& update(const SteinerForest& forest,
                                  const std::vector<char>& tree_dirty);

  const GlobalRouteResult& result() const { return result_; }
  bool routed() const { return routed_; }
  /// Connections whose final path changed in the last `update` (empty after
  /// `route_full`). Indices into `result().connections`.
  const std::vector<int>& changed_connections() const { return changed_conns_; }
  /// True when the last `update` reused every cached route unchanged.
  bool last_update_was_hit() const { return routed_ && changed_conns_.empty(); }
  /// Maze searches skipped thanks to the replay cache in the last update.
  long long last_reused_mazes() const { return last_reused_mazes_; }
  long long last_total_mazes() const { return last_total_mazes_; }

  friend GlobalRouteResult global_route(const Design& design, const SteinerForest& forest,
                                        const RouterOptions& options);

 private:
  struct MazeOp {
    int conn = -1;
    std::vector<GCell> before;  ///< path ripped up by this op
    std::vector<GCell> after;   ///< path committed by this op
  };
  struct ReplayCache {
    std::vector<std::pair<GCell, GCell>> endpoints;  ///< per connection
    std::vector<std::vector<GCell>> base_paths;      ///< post-pattern paths
    std::vector<std::vector<MazeOp>> rounds;         ///< maze ops per RRR round
  };

  void run(const SteinerForest& forest, const std::vector<char>* tree_dirty);

  const Design* design_ = nullptr;
  RouterOptions options_;
  GlobalRouteResult result_;
  ReplayCache cache_;
  std::vector<double> conn_len_;  ///< per-connection routed length (DBU)
  std::vector<int> changed_conns_;
  long long last_reused_mazes_ = 0;
  long long last_total_mazes_ = 0;
  bool routed_ = false;
};

}  // namespace tsteiner
