#include "route/layer_assign.hpp"

#include <algorithm>
#include <numeric>

namespace tsteiner {

std::vector<LayerPair> default_layer_stack() {
  return {
      {"local", 1.0, 1.0, 1.0},          // M1/M2-like: default RC, unlimited
      {"intermediate", 0.45, 0.95, 0.35},  // M3/M4-like
      {"global", 0.15, 0.9, 0.12},         // M5/M6-like: fast and scarce
  };
}

LayerAssignment assign_layers(const SteinerForest& forest, const GlobalRouteResult& gr,
                              LayerPolicy policy, const std::vector<double>* criticality,
                              std::vector<LayerPair> stack) {
  LayerAssignment out;
  out.stack = std::move(stack);
  out.layer_of_connection.assign(gr.connections.size(), 0);
  if (gr.connections.empty()) return out;

  // Connection lengths (DBU) for budgets and the wirelength policy.
  std::vector<double> length(gr.connections.size(), 0.0);
  double total_len = 0.0;
  for (std::size_t c = 0; c < gr.connections.size(); ++c) {
    const RoutedConnection& conn = gr.connections[c];
    const SteinerTree& tree = forest.trees[static_cast<std::size_t>(conn.tree)];
    const SteinerEdge& e = tree.edges[static_cast<std::size_t>(conn.edge)];
    length[c] = conn.length_dbu(gr.grid, tree.nodes[static_cast<std::size_t>(e.a)].pos,
                                tree.nodes[static_cast<std::size_t>(e.b)].pos);
    total_len += length[c];
  }

  // Priority order: by length (wirelength policy) or by criticality.
  std::vector<std::size_t> order(gr.connections.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (policy == LayerPolicy::kTimingDriven && criticality != nullptr) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double ca = (*criticality)[a];
      const double cb = (*criticality)[b];
      if (ca != cb) return ca > cb;
      return length[a] > length[b];  // tie-break: longer first
    });
  } else {
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return length[a] > length[b]; });
  }

  // Fill fast layer pairs (top of the stack first) until their wirelength
  // budget is exhausted; the bottom pair absorbs the rest.
  std::vector<double> budget(out.stack.size());
  for (std::size_t l = 0; l < out.stack.size(); ++l) {
    budget[l] = out.stack[l].capacity_share * total_len;
  }
  for (std::size_t idx : order) {
    int chosen = 0;
    for (int l = static_cast<int>(out.stack.size()) - 1; l >= 1; --l) {
      if (budget[static_cast<std::size_t>(l)] >= length[idx]) {
        chosen = l;
        break;
      }
    }
    out.layer_of_connection[idx] = chosen;
    budget[static_cast<std::size_t>(chosen)] -= length[idx];
    // Each promotion above the local pair costs two extra vias (up + down).
    if (chosen > 0) out.num_layer_vias += 2;
  }
  return out;
}

std::vector<double> connection_criticality(const Design& design, const SteinerForest& forest,
                                           const GlobalRouteResult& gr,
                                           const std::vector<double>& pin_arrival) {
  // Net-level criticality: the worst (largest) arrival among the net's
  // sinks, normalized by the clock period — a cheap proxy for how close the
  // net sits to the critical cone.
  std::vector<double> net_score(design.nets().size(), 0.0);
  for (const Net& n : design.nets()) {
    double worst = 0.0;
    for (int s : n.sink_pins) {
      worst = std::max(worst, pin_arrival[static_cast<std::size_t>(s)]);
    }
    net_score[static_cast<std::size_t>(n.id)] = worst / std::max(1e-9, design.clock_period());
  }
  std::vector<double> crit(gr.connections.size(), 0.0);
  for (std::size_t c = 0; c < gr.connections.size(); ++c) {
    const int net = forest.trees[static_cast<std::size_t>(gr.connections[c].tree)].net;
    crit[c] = net_score[static_cast<std::size_t>(net)];
  }
  return crit;
}

}  // namespace tsteiner
