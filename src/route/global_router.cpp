#include "route/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace tsteiner {

int RoutedConnection::num_bends() const {
  int bends = 0;
  for (std::size_t i = 2; i < path.size(); ++i) {
    const bool was_h = path[i - 1].y == path[i - 2].y && path[i - 1].x != path[i - 2].x;
    const bool is_h = path[i].y == path[i - 1].y && path[i].x != path[i - 1].x;
    if (was_h != is_h) ++bends;
  }
  return bends;
}

double RoutedConnection::length_dbu(const GridGraph& grid, const PointF& a,
                                    const PointF& b) const {
  if (path.size() <= 1) return manhattan(a, b);
  return static_cast<double>(path.size() - 1) * static_cast<double>(grid.gcell_size());
}

namespace {

/// Congestion cost of crossing one gcell edge with current usage u and
/// capacity c: gentle below capacity, steep above (negotiated congestion).
double edge_penalty(double usage, double cap, double history) {
  const double util = usage / cap;
  double p = 0.3 * util + history;
  if (usage >= cap) p += 3.0 + 3.0 * (usage - cap + 1.0) / cap;
  return p;
}

/// Append an axis-aligned run of gcells from path.back() to `to` (same row
/// or column).
void append_run(std::vector<GCell>& path, GCell to) {
  GCell cur = path.back();
  while (!(cur == to)) {
    if (cur.x != to.x) {
      cur.x += to.x > cur.x ? 1 : -1;
    } else {
      cur.y += to.y > cur.y ? 1 : -1;
    }
    path.push_back(cur);
  }
}

/// Route a -> b with one of the two L-patterns, chosen by endpoint parity so
/// bends spread evenly. The choice is deliberately a pure function of the
/// endpoints — never of usage — so every base path depends only on its own
/// connection's gcell endpoints. Congestion is negotiated by the maze rounds
/// instead: a usage-aware initial L choice would couple each base path to
/// the commit order of every earlier one, and in a replay a single moved
/// tree could flip near-tied L choices across the whole die, destroying the
/// locality the maze cache depends on. Purity is also what lets the replay
/// patch only moved connections instead of re-walking all n patterns.
std::vector<GCell> pattern_path(GCell a, GCell b) {
  std::vector<GCell> path{a};
  if (a == b) return path;
  const bool x_first = ((a.x + a.y + b.x + b.y) & 1) == 0;
  const GCell corner = x_first ? GCell{b.x, a.y} : GCell{a.x, b.y};
  append_run(path, corner);
  append_run(path, b);
  return path;
}

void rip_up(GridGraph& grid, const std::vector<GCell>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    const GCell& p = path[i - 1];
    const GCell& q = path[i];
    if (p.y == q.y) {
      grid.add_h_usage(std::min(p.x, q.x), p.y, -1.0);
    } else {
      grid.add_v_usage(p.x, std::min(p.y, q.y), -1.0);
    }
  }
}

/// Commit an already-known path's usage (the exact inverse of rip_up, and
/// bit-identical to the commits pattern_route / maze_route would perform
/// while producing the same path).
void apply_usage(GridGraph& grid, const std::vector<GCell>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    const GCell& p = path[i - 1];
    const GCell& q = path[i];
    if (p.y == q.y) {
      grid.add_h_usage(std::min(p.x, q.x), p.y, 1.0);
    } else {
      grid.add_v_usage(p.x, std::min(p.y, q.y), 1.0);
    }
  }
}

/// Dijkstra maze route within a window; commits usage. Falls back to the
/// pattern route if the window somehow excludes a path (cannot happen for a
/// bbox window, kept for safety).
std::vector<GCell> maze_route(GridGraph& grid, GCell a, GCell b, int margin) {
  if (a == b) return {a};
  const int x_lo = std::max(0, std::min(a.x, b.x) - margin);
  const int x_hi = std::min(grid.nx() - 1, std::max(a.x, b.x) + margin);
  const int y_lo = std::max(0, std::min(a.y, b.y) - margin);
  const int y_hi = std::min(grid.ny() - 1, std::max(a.y, b.y) + margin);
  const int w = x_hi - x_lo + 1;
  const int h = y_hi - y_lo + 1;
  const auto idx = [&](int x, int y) {
    return static_cast<std::size_t>(y - y_lo) * static_cast<std::size_t>(w) +
           static_cast<std::size_t>(x - x_lo);
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(w) * static_cast<std::size_t>(h), kInf);
  std::vector<int> prev(dist.size(), -1);
  using QE = std::pair<double, std::size_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[idx(a.x, a.y)] = 0.0;
  pq.push({0.0, idx(a.x, a.y)});
  const std::size_t target = idx(b.x, b.y);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == target) break;
    const int ux = x_lo + static_cast<int>(u % static_cast<std::size_t>(w));
    const int uy = y_lo + static_cast<int>(u / static_cast<std::size_t>(w));
    const auto relax = [&](int vx, int vy, double edge_cost) {
      const std::size_t v = idx(vx, vy);
      if (dist[u] + edge_cost < dist[v]) {
        dist[v] = dist[u] + edge_cost;
        prev[v] = static_cast<int>(u);
        pq.push({dist[v], v});
      }
    };
    if (ux > x_lo) {
      relax(ux - 1, uy,
            1.0 + edge_penalty(grid.h_usage(ux - 1, uy), grid.h_capacity(),
                               grid.h_history(ux - 1, uy)));
    }
    if (ux < x_hi) {
      relax(ux + 1, uy,
            1.0 + edge_penalty(grid.h_usage(ux, uy), grid.h_capacity(),
                               grid.h_history(ux, uy)));
    }
    if (uy > y_lo) {
      relax(ux, uy - 1,
            1.0 + edge_penalty(grid.v_usage(ux, uy - 1), grid.v_capacity(),
                               grid.v_history(ux, uy - 1)));
    }
    if (uy < y_hi) {
      relax(ux, uy + 1,
            1.0 + edge_penalty(grid.v_usage(ux, uy), grid.v_capacity(),
                               grid.v_history(ux, uy)));
    }
  }
  if (dist[target] == kInf) {
    std::vector<GCell> fallback = pattern_path(a, b);
    apply_usage(grid, fallback);
    return fallback;
  }
  // Reconstruct, then commit.
  std::vector<GCell> rev;
  for (int v = static_cast<int>(target); v != -1; v = prev[static_cast<std::size_t>(v)]) {
    rev.push_back({x_lo + static_cast<int>(static_cast<std::size_t>(v) % static_cast<std::size_t>(w)),
                   y_lo + static_cast<int>(static_cast<std::size_t>(v) / static_cast<std::size_t>(w))});
  }
  std::reverse(rev.begin(), rev.end());
  for (std::size_t i = 1; i < rev.size(); ++i) {
    const GCell& p = rev[i - 1];
    const GCell& q = rev[i];
    if (p.y == q.y) {
      grid.add_h_usage(std::min(p.x, q.x), p.y, 1.0);
    } else {
      grid.add_v_usage(p.x, std::min(p.y, q.y), 1.0);
    }
  }
  return rev;
}

double p90(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const auto k = static_cast<std::ptrdiff_t>(0.9 * static_cast<double>(xs.size() - 1));
  std::nth_element(xs.begin(), xs.begin() + k, xs.end());
  return xs[static_cast<std::size_t>(k)];
}

/// Exact per-edge difference between this replay's routing field and the
/// cached previous run's field at the aligned point of the operation
/// sequence. Usage deltas are integer wire counts; history deltas are
/// integer charge counts (both runs apply the identical per-charge
/// increment in the identical round order, so an equal count means a
/// bit-equal history value). A per-tile counter of nonzero entries makes
/// "does this maze window read bit-identical state?" a cheap tile scan —
/// and because deltas cancel when a diverged region re-converges, the clean
/// region grows back, where a monotone dirty cover can only shrink it.
class FieldDelta {
 public:
  static constexpr int kTileShift = 2;  // 4x4 gcell tiles

  void init(int nx, int ny) {
    nx_ = nx;
    ny_ = ny;
    tx_ = (nx >> kTileShift) + 1;
    const int ty = (ny >> kTileShift) + 1;
    h_usage_.assign(static_cast<std::size_t>(std::max(0, nx - 1)) *
                        static_cast<std::size_t>(ny), 0);
    v_usage_.assign(static_cast<std::size_t>(nx) *
                        static_cast<std::size_t>(std::max(0, ny - 1)), 0);
    h_hist_.assign(h_usage_.size(), 0);
    v_hist_.assign(v_usage_.size(), 0);
    tile_nonzero_.assign(static_cast<std::size_t>(tx_) * static_cast<std::size_t>(ty), 0);
    total_nonzero_ = 0;
  }

  /// Accumulate one routed path's edge usage with the given sign: +1 for a
  /// commit in this run or a rip in the previous run, -1 for the converse.
  void add_path_usage(const std::vector<GCell>& path, int sign) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      const GCell& p = path[i - 1];
      const GCell& q = path[i];
      if (p.y == q.y) {
        bump(h_usage_, h_index(std::min(p.x, q.x), p.y), std::min(p.x, q.x), p.y, sign);
      } else {
        bump(v_usage_, v_index(p.x, std::min(p.y, q.y)), p.x, std::min(p.y, q.y), sign);
      }
    }
  }

  int h_usage_delta(int x, int y) const { return h_usage_[h_index(x, y)]; }
  int v_usage_delta(int x, int y) const { return v_usage_[v_index(x, y)]; }
  void add_h_hist(int x, int y, int d) { bump(h_hist_, h_index(x, y), x, y, d); }
  void add_v_hist(int x, int y, int d) { bump(v_hist_, v_index(x, y), x, y, d); }

  /// True iff every usage and history delta attributed to a gcell in the
  /// inclusive window is zero, i.e. a maze over the window reads state
  /// bit-identical to the previous run's at the aligned point.
  bool window_clean(int x0, int y0, int x1, int y1) const {
    if (total_nonzero_ == 0) return true;
    const int tx0 = x0 >> kTileShift, tx1 = x1 >> kTileShift;
    const int ty0 = y0 >> kTileShift, ty1 = y1 >> kTileShift;
    for (int t = ty0; t <= ty1; ++t) {
      const int* row =
          tile_nonzero_.data() + static_cast<std::size_t>(t) * static_cast<std::size_t>(tx_);
      for (int s = tx0; s <= tx1; ++s) {
        if (row[s] != 0) return false;
      }
    }
    return true;
  }

 private:
  std::size_t h_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_ - 1) +
           static_cast<std::size_t>(x);
  }
  std::size_t v_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(x);
  }
  void bump(std::vector<int>& arr, std::size_t idx, int x, int y, int d) {
    const int before = arr[idx];
    const int after = before + d;
    arr[idx] = after;
    if ((before == 0) != (after == 0)) {
      const std::size_t tile =
          static_cast<std::size_t>(y >> kTileShift) * static_cast<std::size_t>(tx_) +
          static_cast<std::size_t>(x >> kTileShift);
      const int step = before == 0 ? 1 : -1;
      tile_nonzero_[tile] += step;
      total_nonzero_ += step;
    }
  }

 private:
  int nx_ = 0, ny_ = 0, tx_ = 0;
  std::vector<int> h_usage_, v_usage_;  // wire-count deltas per grid edge
  std::vector<int> h_hist_, v_hist_;    // history charge-count deltas
  std::vector<int> tile_nonzero_;
  long long total_nonzero_ = 0;
};

}  // namespace

GlobalRouterState::GlobalRouterState(const Design* design, const RouterOptions& options)
    : design_(design), options_(options) {}

void GlobalRouterState::run(const SteinerForest& forest, const std::vector<char>* tree_dirty) {
  TS_TRACE_SPAN_CAT("route.global", "route");
  static obs::Counter& m_runs = obs::metrics().counter("route.global_runs");
  static obs::Counter& m_ripups = obs::metrics().counter("route.ripups");
  static obs::Counter& m_rrr_rounds = obs::metrics().counter("route.rrr_rounds");
  static obs::Counter& m_replays = obs::metrics().counter("route.incremental_replays");
  static obs::Counter& m_mazes_reused = obs::metrics().counter("route.reused_mazes");
  static obs::Gauge& m_overflow = obs::metrics().gauge("route.total_overflow");
  const bool replay = tree_dirty != nullptr;
  if (replay) {
    m_replays.add();
  } else {
    m_runs.add();
  }

  const double prev_h_cap = result_.calibrated_h_cap;
  const double prev_v_cap = result_.calibrated_v_cap;
  if (replay) {
    result_.rrr_rounds_used = 0;
  } else {
    result_ = GlobalRouteResult{GridGraph(design_->die(), options_.gcell_size),
                                {}, {}, 0, 0, 0, 0, 0, 0};
    result_.conn_of_edge.resize(forest.trees.size());
    for (std::size_t t = 0; t < forest.trees.size(); ++t) {
      const SteinerTree& tree = forest.trees[t];
      result_.conn_of_edge[t].assign(tree.edges.size(), -1);
      for (std::size_t e = 0; e < tree.edges.size(); ++e) {
        RoutedConnection conn;
        conn.tree = static_cast<int>(t);
        conn.edge = static_cast<int>(e);
        result_.conn_of_edge[t][e] = static_cast<int>(result_.connections.size());
        result_.connections.push_back(std::move(conn));
      }
    }
  }
  GridGraph& grid = result_.grid;
  const std::size_t n = result_.connections.size();

  FieldDelta delta;
  ReplayCache next;
  // Replay bookkeeping: which connections' final path may differ from the
  // previous run's, the previous run's final path per connection (last maze
  // `after`, else the cached base), and replacement base paths for moved
  // connections (applied to the cache after accounting, which still reads
  // the old bases).
  std::vector<char> touched;
  std::vector<const std::vector<GCell>*> prev_final;
  std::vector<std::pair<std::size_t, std::vector<GCell>>> new_bases;

  if (!replay) {
    // Initial pattern routing of every tree edge, from a zeroed grid.
    next.endpoints.resize(n);
    next.base_paths.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      RoutedConnection& conn = result_.connections[i];
      const SteinerTree& tree = forest.trees[static_cast<std::size_t>(conn.tree)];
      const SteinerEdge& edge = tree.edges[static_cast<std::size_t>(conn.edge)];
      next.endpoints[i] = {grid.gcell_at(tree.nodes[static_cast<std::size_t>(edge.a)].pos),
                           grid.gcell_at(tree.nodes[static_cast<std::size_t>(edge.b)].pos)};
      conn.path = pattern_path(next.endpoints[i].first, next.endpoints[i].second);
      apply_usage(grid, conn.path);
      next.base_paths[i] = conn.path;
    }
  } else {
    // Patch, don't rebuild: the grid still holds the previous run's final
    // state. Usage entries are integer wire counts (exact in a double), so
    // ripping a previous path and committing a new one lands on the exact
    // value a fresh pattern pass would compute, in any order. Three patches
    // restore the exact post-pattern state of this run:
    //   1. history back to all-zero (only the fresh-start value matters —
    //      rounds recharge it honestly below);
    //   2. every previously-mazed connection back from its negotiated final
    //      path to its base path;
    //   3. every connection whose gcell endpoints moved from its old base
    //      to the new pattern path — the only connections that diverge from
    //      the previous run, so only they seed the field delta.
    // Untouched connections already hold their base path (their final path
    // IS the base when no maze op rerouted them), so the whole pattern
    // phase costs O(dirty + previously-mazed), not O(n).
    delta.init(grid.nx(), grid.ny());
    grid.clear_history();
    prev_final.assign(n, nullptr);
    for (const std::vector<MazeOp>& round : cache_.rounds) {
      for (const MazeOp& op : round) {
        prev_final[static_cast<std::size_t>(op.conn)] = &op.after;
      }
    }
    touched.assign(n, 0);
    next.endpoints = std::move(cache_.endpoints);
    for (std::size_t i = 0; i < n; ++i) {
      RoutedConnection& conn = result_.connections[i];
      const std::vector<GCell>* pf = prev_final[i];
      bool ep_changed = false;
      if ((*tree_dirty)[static_cast<std::size_t>(conn.tree)]) {
        const SteinerTree& tree = forest.trees[static_cast<std::size_t>(conn.tree)];
        const SteinerEdge& edge = tree.edges[static_cast<std::size_t>(conn.edge)];
        const std::pair<GCell, GCell> ep = {
            grid.gcell_at(tree.nodes[static_cast<std::size_t>(edge.a)].pos),
            grid.gcell_at(tree.nodes[static_cast<std::size_t>(edge.b)].pos)};
        ep_changed = !(ep == next.endpoints[i]);
        next.endpoints[i] = ep;
      }
      if (ep_changed) {
        std::vector<GCell> base = pattern_path(next.endpoints[i].first, next.endpoints[i].second);
        delta.add_path_usage(base, +1);
        delta.add_path_usage(cache_.base_paths[i], -1);
        rip_up(grid, pf != nullptr ? *pf : cache_.base_paths[i]);
        apply_usage(grid, base);
        conn.path = base;
        new_bases.emplace_back(i, std::move(base));
        touched[i] = 1;
      } else if (pf != nullptr) {
        rip_up(grid, *pf);
        apply_usage(grid, cache_.base_paths[i]);
        conn.path = cache_.base_paths[i];
        touched[i] = 1;
      }
    }
  }

  // Capacity calibration (or pinned capacities for apples-to-apples runs).
  if (options_.fixed_h_cap > 0.0 && options_.fixed_v_cap > 0.0) {
    grid.set_capacities(options_.fixed_h_cap, options_.fixed_v_cap);
  } else {
    // Row-parallel usage snapshots (indexed writes, read-only grid).
    const std::size_t h_per_row = static_cast<std::size_t>(std::max(0, grid.nx() - 1));
    const std::size_t v_per_row = static_cast<std::size_t>(grid.nx());
    std::vector<double> hu(static_cast<std::size_t>(grid.ny()) * h_per_row);
    std::vector<double> vu(static_cast<std::size_t>(std::max(0, grid.ny() - 1)) * v_per_row);
    parallel_for(0, static_cast<std::size_t>(grid.ny()), 4, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t y = lo; y < hi; ++y) {
        for (int x = 0; x + 1 < grid.nx(); ++x) {
          hu[y * h_per_row + static_cast<std::size_t>(x)] =
              grid.h_usage(x, static_cast<int>(y));
        }
      }
    });
    parallel_for(0, static_cast<std::size_t>(std::max(0, grid.ny() - 1)), 4,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t y = lo; y < hi; ++y) {
                     for (int x = 0; x < grid.nx(); ++x) {
                       vu[y * v_per_row + static_cast<std::size_t>(x)] =
                           grid.v_usage(x, static_cast<int>(y));
                     }
                   }
                 });
    const double h_cap = std::max(options_.min_capacity, options_.capacity_factor * p90(hu));
    const double v_cap = std::max(options_.min_capacity, options_.capacity_factor * p90(vu));
    grid.set_capacities(h_cap, v_cap);
  }
  result_.calibrated_h_cap = grid.h_capacity();
  result_.calibrated_v_cap = grid.v_capacity();
  // Maze reuse additionally requires identical capacities (they feed every
  // edge penalty); with calibration enabled a demand shift can move p90.
  const bool caps_match =
      replay && grid.h_capacity() == prev_h_cap && grid.v_capacity() == prev_v_cap;

  // Negotiated rip-up and reroute.
  last_total_mazes_ = 0;
  last_reused_mazes_ = 0;
  for (int round = 0; round < options_.rrr_iterations; ++round) {
    if (grid.total_overflow() <= 0.0) break;
    ++result_.rrr_rounds_used;
    // Add history on overflowed edges: rows are disjoint, so row-parallel
    // writes touch distinct grid cells. The replay's serial variant also
    // settles the history charge-count delta — the previous run charged an
    // edge exactly when its usage (current usage minus the usage delta)
    // exceeded the same capacity, so both charge decisions come out of one
    // pass without storing the previous run's grid.
    if (!replay) {
      parallel_for(0, static_cast<std::size_t>(grid.ny()), 4, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t yy = lo; yy < hi; ++yy) {
          const int y = static_cast<int>(yy);
          for (int x = 0; x + 1 < grid.nx(); ++x) {
            if (grid.h_usage(x, y) > grid.h_capacity()) {
              grid.add_h_history(x, y, options_.history_increment);
            }
          }
          if (y + 1 < grid.ny()) {
            for (int x = 0; x < grid.nx(); ++x) {
              if (grid.v_usage(x, y) > grid.v_capacity()) {
                grid.add_v_history(x, y, options_.history_increment);
              }
            }
          }
        }
      });
    } else {
      for (int y = 0; y < grid.ny(); ++y) {
        for (int x = 0; x + 1 < grid.nx(); ++x) {
          const double u = grid.h_usage(x, y);
          const bool cur_charge = u > grid.h_capacity();
          if (cur_charge) grid.add_h_history(x, y, options_.history_increment);
          const bool prev_charge = u - delta.h_usage_delta(x, y) > grid.h_capacity();
          if (cur_charge != prev_charge) delta.add_h_hist(x, y, cur_charge ? 1 : -1);
        }
        if (y + 1 < grid.ny()) {
          for (int x = 0; x < grid.nx(); ++x) {
            const double u = grid.v_usage(x, y);
            const bool cur_charge = u > grid.v_capacity();
            if (cur_charge) grid.add_v_history(x, y, options_.history_increment);
            const bool prev_charge = u - delta.v_usage_delta(x, y) > grid.v_capacity();
            if (cur_charge != prev_charge) delta.add_v_hist(x, y, cur_charge ? 1 : -1);
          }
        }
      }
    }
    // Collect connections through overflowed edges: parallel per-connection
    // hit flags (read-only grid scan), then an in-order sweep so the victim
    // list — and with it the reroute order — matches the serial router.
    std::vector<char> hit_flags(result_.connections.size(), 0);
    parallel_for(0, result_.connections.size(), 16, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t c = lo; c < hi; ++c) {
        const auto& path = result_.connections[c].path;
        bool hit = false;
        for (std::size_t i = 1; i < path.size() && !hit; ++i) {
          const GCell& p = path[i - 1];
          const GCell& q = path[i];
          if (p.y == q.y) {
            hit = grid.h_usage(std::min(p.x, q.x), p.y) > grid.h_capacity();
          } else {
            hit = grid.v_usage(p.x, std::min(p.y, q.y)) > grid.v_capacity();
          }
        }
        hit_flags[c] = hit ? 1 : 0;
      }
    });
    std::vector<int> victims;
    for (std::size_t c = 0; c < result_.connections.size(); ++c) {
      if (hit_flags[c]) victims.push_back(static_cast<int>(c));
    }
    if (victims.empty()) break;
    m_ripups.add(victims.size());
    m_rrr_rounds.add();

    const std::vector<MazeOp>* prev_round =
        replay && static_cast<std::size_t>(round) < cache_.rounds.size()
            ? &cache_.rounds[static_cast<std::size_t>(round)]
            : nullptr;
    next.rounds.emplace_back();
    std::vector<MazeOp>& ops = next.rounds.back();
    ops.reserve(victims.size());
    // Victims ascend, and the previous run's ops were recorded in its own
    // ascending victim order, so one merge walk aligns the two operation
    // sequences. A cached op the replay walks past (its connection is not a
    // victim this time) still happened in the previous run — fold its rip +
    // commit into the field delta at exactly this point of the sequence.
    std::size_t pi = 0;
    const auto skip_cached_ops_below = [&](int c) {
      while (prev_round && pi < prev_round->size() && (*prev_round)[pi].conn < c) {
        const MazeOp& sk = (*prev_round)[pi];
        delta.add_path_usage(sk.before, +1);
        delta.add_path_usage(sk.after, -1);
        ++pi;
      }
    };
    for (int c : victims) {
      RoutedConnection& conn = result_.connections[static_cast<std::size_t>(c)];
      if (replay) touched[static_cast<std::size_t>(c)] = 1;
      const MazeOp* cached = nullptr;
      skip_cached_ops_below(c);
      if (prev_round && pi < prev_round->size() && (*prev_round)[pi].conn == c) {
        cached = &(*prev_round)[pi];
        ++pi;
      }
      const GCell a = conn.path.front();
      const GCell b = conn.path.back();
      ++last_total_mazes_;
      MazeOp op;
      op.conn = c;
      op.before = std::move(conn.path);
      const bool same_before = cached != nullptr && op.before == cached->before;
      rip_up(grid, op.before);
      if (replay && !same_before) {
        delta.add_path_usage(op.before, -1);
        if (cached) delta.add_path_usage(cached->before, +1);
      }
      bool reuse = false;
      if (same_before && caps_match) {
        const int x_lo = std::max(0, std::min(a.x, b.x) - options_.maze_margin);
        const int x_hi = std::min(grid.nx() - 1, std::max(a.x, b.x) + options_.maze_margin);
        const int y_lo = std::max(0, std::min(a.y, b.y) - options_.maze_margin);
        const int y_hi = std::min(grid.ny() - 1, std::max(a.y, b.y) + options_.maze_margin);
        reuse = delta.window_clean(x_lo, y_lo, x_hi, y_hi);
      }
      if (reuse) {
        // The maze is a pure function of the window's usage/history and the
        // endpoints; a clean window means it would reproduce the cached path
        // (and the rip/commit deltas cancel exactly).
        conn.path = cached->after;
        apply_usage(grid, conn.path);
        ++last_reused_mazes_;
        m_mazes_reused.add();
      } else {
        conn.path = maze_route(grid, a, b, options_.maze_margin);
        if (replay) {
          if (cached == nullptr || conn.path != cached->after) {
            delta.add_path_usage(conn.path, +1);
            if (cached) delta.add_path_usage(cached->after, -1);
          }
        }
      }
      op.after = conn.path;
      ops.push_back(std::move(op));
    }
    skip_cached_ops_below(std::numeric_limits<int>::max());
    TS_DEBUG("GR round %d: %zu victims, overflow %.1f, reused %lld/%lld mazes", round,
             victims.size(), grid.total_overflow(), last_reused_mazes_, last_total_mazes_);
  }

  // Final accounting: per-connection lengths in parallel, serial fold so the
  // float sum matches the historical connection order bit for bit.
  changed_conns_.clear();
  if (!replay) {
    conn_len_.assign(n, 0.0);
    parallel_for(0, n, 32, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t c = lo; c < hi; ++c) {
        const RoutedConnection& conn = result_.connections[c];
        const SteinerTree& tree = forest.trees[static_cast<std::size_t>(conn.tree)];
        const SteinerEdge& e = tree.edges[static_cast<std::size_t>(conn.edge)];
        conn_len_[c] = conn.length_dbu(grid, tree.nodes[static_cast<std::size_t>(e.a)].pos,
                                       tree.nodes[static_cast<std::size_t>(e.b)].pos);
      }
    });
  } else {
    // Only patched or this-run-mazed connections can differ from the
    // previous run's final path; everything else kept its path in place.
    for (std::size_t c = 0; c < n; ++c) {
      const RoutedConnection& conn = result_.connections[c];
      const bool dirty_tree = (*tree_dirty)[static_cast<std::size_t>(conn.tree)];
      if (touched[c] == 0 && !dirty_tree) continue;
      if (touched[c] != 0) {
        const std::vector<GCell>& pf =
            prev_final[c] != nullptr ? *prev_final[c] : cache_.base_paths[c];
        if (conn.path != pf) changed_conns_.push_back(static_cast<int>(c));
      }
      // Lengths of single-gcell paths depend on the continuous endpoint
      // positions, so every connection of a moved tree recomputes.
      const SteinerTree& tree = forest.trees[static_cast<std::size_t>(conn.tree)];
      const SteinerEdge& e = tree.edges[static_cast<std::size_t>(conn.edge)];
      conn_len_[c] = conn.length_dbu(grid, tree.nodes[static_cast<std::size_t>(e.a)].pos,
                                     tree.nodes[static_cast<std::size_t>(e.b)].pos);
    }
  }
  result_.wirelength_dbu = 0.0;
  for (double len : conn_len_) result_.wirelength_dbu += len;
  result_.total_overflow = grid.total_overflow();
  result_.overflowed_edges = grid.num_overflowed_edges();
  m_overflow.set(result_.total_overflow);

  if (replay) {
    // Accounting above still read the old bases; only now fold in the
    // replacements for moved connections.
    next.base_paths = std::move(cache_.base_paths);
    for (std::pair<std::size_t, std::vector<GCell>>& nb : new_bases) {
      next.base_paths[nb.first] = std::move(nb.second);
    }
  }
  cache_ = std::move(next);
}

const GlobalRouteResult& GlobalRouterState::route_full(const SteinerForest& forest) {
  run(forest, nullptr);
  routed_ = true;
  return result_;
}

const GlobalRouteResult& GlobalRouterState::update(const SteinerForest& forest,
                                                   const std::vector<char>& tree_dirty) {
  bool topology_ok = routed_ && forest.trees.size() == result_.conn_of_edge.size() &&
                     tree_dirty.size() == forest.trees.size();
  if (topology_ok) {
    for (std::size_t t = 0; t < forest.trees.size(); ++t) {
      if (forest.trees[t].edges.size() != result_.conn_of_edge[t].size()) {
        topology_ok = false;
        break;
      }
    }
  }
  if (!topology_ok) return route_full(forest);
  run(forest, &tree_dirty);
  return result_;
}

GlobalRouteResult global_route(const Design& design, const SteinerForest& forest,
                               const RouterOptions& options) {
  GlobalRouterState state(&design, options);
  state.route_full(forest);
  return std::move(state.result_);
}

}  // namespace tsteiner
