#include "route/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace tsteiner {

int RoutedConnection::num_bends() const {
  int bends = 0;
  for (std::size_t i = 2; i < path.size(); ++i) {
    const bool was_h = path[i - 1].y == path[i - 2].y && path[i - 1].x != path[i - 2].x;
    const bool is_h = path[i].y == path[i - 1].y && path[i].x != path[i - 1].x;
    if (was_h != is_h) ++bends;
  }
  return bends;
}

double RoutedConnection::length_dbu(const GridGraph& grid, const PointF& a,
                                    const PointF& b) const {
  if (path.size() <= 1) return manhattan(a, b);
  return static_cast<double>(path.size() - 1) * static_cast<double>(grid.gcell_size());
}

namespace {

/// Congestion cost of crossing one gcell edge with current usage u and
/// capacity c: gentle below capacity, steep above (negotiated congestion).
double edge_penalty(double usage, double cap, double history) {
  const double util = usage / cap;
  double p = 0.3 * util + history;
  if (usage >= cap) p += 3.0 + 3.0 * (usage - cap + 1.0) / cap;
  return p;
}

/// Walk an axis-aligned run of gcells from `from` toward `to` (same row or
/// column), appending to path and adding usage.
void commit_run(GridGraph& grid, std::vector<GCell>& path, GCell to) {
  GCell cur = path.back();
  while (!(cur == to)) {
    GCell next = cur;
    if (cur.x != to.x) {
      next.x += to.x > cur.x ? 1 : -1;
      grid.add_h_usage(std::min(cur.x, next.x), cur.y, 1.0);
    } else {
      next.y += to.y > cur.y ? 1 : -1;
      grid.add_v_usage(cur.x, std::min(cur.y, next.y), 1.0);
    }
    path.push_back(next);
    cur = next;
  }
}

/// Cost of an axis-aligned run without committing it.
double run_cost(const GridGraph& grid, GCell from, GCell to) {
  double cost = 0.0;
  GCell cur = from;
  while (!(cur == to)) {
    GCell next = cur;
    if (cur.x != to.x) {
      next.x += to.x > cur.x ? 1 : -1;
      const int x = std::min(cur.x, next.x);
      cost += 1.0 + edge_penalty(grid.h_usage(x, cur.y), grid.h_capacity(),
                                 grid.h_history(x, cur.y));
    } else {
      next.y += to.y > cur.y ? 1 : -1;
      const int y = std::min(cur.y, next.y);
      cost += 1.0 + edge_penalty(grid.v_usage(cur.x, y), grid.v_capacity(),
                                 grid.v_history(cur.x, y));
    }
    cur = next;
  }
  return cost;
}

/// Route a -> b with the cheaper of the two L-patterns; commits usage.
std::vector<GCell> pattern_route(GridGraph& grid, GCell a, GCell b) {
  std::vector<GCell> path{a};
  if (a == b) return path;
  const GCell corner1{b.x, a.y};  // x-first
  const GCell corner2{a.x, b.y};  // y-first
  const double c1 = run_cost(grid, a, corner1) + run_cost(grid, corner1, b);
  const double c2 = run_cost(grid, a, corner2) + run_cost(grid, corner2, b);
  const GCell corner = c1 <= c2 ? corner1 : corner2;
  commit_run(grid, path, corner);
  commit_run(grid, path, b);
  return path;
}

void rip_up(GridGraph& grid, const std::vector<GCell>& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    const GCell& p = path[i - 1];
    const GCell& q = path[i];
    if (p.y == q.y) {
      grid.add_h_usage(std::min(p.x, q.x), p.y, -1.0);
    } else {
      grid.add_v_usage(p.x, std::min(p.y, q.y), -1.0);
    }
  }
}

/// Dijkstra maze route within a window; commits usage. Falls back to the
/// pattern route if the window somehow excludes a path (cannot happen for a
/// bbox window, kept for safety).
std::vector<GCell> maze_route(GridGraph& grid, GCell a, GCell b, int margin) {
  if (a == b) return {a};
  const int x_lo = std::max(0, std::min(a.x, b.x) - margin);
  const int x_hi = std::min(grid.nx() - 1, std::max(a.x, b.x) + margin);
  const int y_lo = std::max(0, std::min(a.y, b.y) - margin);
  const int y_hi = std::min(grid.ny() - 1, std::max(a.y, b.y) + margin);
  const int w = x_hi - x_lo + 1;
  const int h = y_hi - y_lo + 1;
  const auto idx = [&](int x, int y) {
    return static_cast<std::size_t>(y - y_lo) * static_cast<std::size_t>(w) +
           static_cast<std::size_t>(x - x_lo);
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(w) * static_cast<std::size_t>(h), kInf);
  std::vector<int> prev(dist.size(), -1);
  using QE = std::pair<double, std::size_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  dist[idx(a.x, a.y)] = 0.0;
  pq.push({0.0, idx(a.x, a.y)});
  const std::size_t target = idx(b.x, b.y);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == target) break;
    const int ux = x_lo + static_cast<int>(u % static_cast<std::size_t>(w));
    const int uy = y_lo + static_cast<int>(u / static_cast<std::size_t>(w));
    const auto relax = [&](int vx, int vy, double edge_cost) {
      const std::size_t v = idx(vx, vy);
      if (dist[u] + edge_cost < dist[v]) {
        dist[v] = dist[u] + edge_cost;
        prev[v] = static_cast<int>(u);
        pq.push({dist[v], v});
      }
    };
    if (ux > x_lo) {
      relax(ux - 1, uy,
            1.0 + edge_penalty(grid.h_usage(ux - 1, uy), grid.h_capacity(),
                               grid.h_history(ux - 1, uy)));
    }
    if (ux < x_hi) {
      relax(ux + 1, uy,
            1.0 + edge_penalty(grid.h_usage(ux, uy), grid.h_capacity(),
                               grid.h_history(ux, uy)));
    }
    if (uy > y_lo) {
      relax(ux, uy - 1,
            1.0 + edge_penalty(grid.v_usage(ux, uy - 1), grid.v_capacity(),
                               grid.v_history(ux, uy - 1)));
    }
    if (uy < y_hi) {
      relax(ux, uy + 1,
            1.0 + edge_penalty(grid.v_usage(ux, uy), grid.v_capacity(),
                               grid.v_history(ux, uy)));
    }
  }
  if (dist[target] == kInf) return pattern_route(grid, a, b);
  // Reconstruct, then commit.
  std::vector<GCell> rev;
  for (int v = static_cast<int>(target); v != -1; v = prev[static_cast<std::size_t>(v)]) {
    rev.push_back({x_lo + static_cast<int>(static_cast<std::size_t>(v) % static_cast<std::size_t>(w)),
                   y_lo + static_cast<int>(static_cast<std::size_t>(v) / static_cast<std::size_t>(w))});
  }
  std::reverse(rev.begin(), rev.end());
  for (std::size_t i = 1; i < rev.size(); ++i) {
    const GCell& p = rev[i - 1];
    const GCell& q = rev[i];
    if (p.y == q.y) {
      grid.add_h_usage(std::min(p.x, q.x), p.y, 1.0);
    } else {
      grid.add_v_usage(p.x, std::min(p.y, q.y), 1.0);
    }
  }
  return rev;
}

double p90(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const auto k = static_cast<std::ptrdiff_t>(0.9 * static_cast<double>(xs.size() - 1));
  std::nth_element(xs.begin(), xs.begin() + k, xs.end());
  return xs[static_cast<std::size_t>(k)];
}

}  // namespace

GlobalRouteResult global_route(const Design& design, const SteinerForest& forest,
                               const RouterOptions& options) {
  TS_TRACE_SPAN_CAT("route.global", "route");
  static obs::Counter& m_runs = obs::metrics().counter("route.global_runs");
  static obs::Counter& m_ripups = obs::metrics().counter("route.ripups");
  static obs::Counter& m_rrr_rounds = obs::metrics().counter("route.rrr_rounds");
  static obs::Gauge& m_overflow = obs::metrics().gauge("route.total_overflow");
  m_runs.add();
  GlobalRouteResult result{GridGraph(design.die(), options.gcell_size), {}, {}, 0, 0, 0, 0, 0, 0};
  GridGraph& grid = result.grid;

  // Initial pattern routing of every tree edge.
  result.conn_of_edge.resize(forest.trees.size());
  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    const SteinerTree& tree = forest.trees[t];
    result.conn_of_edge[t].assign(tree.edges.size(), -1);
    for (std::size_t e = 0; e < tree.edges.size(); ++e) {
      const SteinerEdge& edge = tree.edges[e];
      const GCell ga = grid.gcell_at(tree.nodes[static_cast<std::size_t>(edge.a)].pos);
      const GCell gb = grid.gcell_at(tree.nodes[static_cast<std::size_t>(edge.b)].pos);
      RoutedConnection conn;
      conn.tree = static_cast<int>(t);
      conn.edge = static_cast<int>(e);
      conn.path = pattern_route(grid, ga, gb);
      result.conn_of_edge[t][e] = static_cast<int>(result.connections.size());
      result.connections.push_back(std::move(conn));
    }
  }

  // Capacity calibration (or pinned capacities for apples-to-apples runs).
  if (options.fixed_h_cap > 0.0 && options.fixed_v_cap > 0.0) {
    grid.set_capacities(options.fixed_h_cap, options.fixed_v_cap);
  } else {
    // Row-parallel usage snapshots (indexed writes, read-only grid).
    const std::size_t h_per_row = static_cast<std::size_t>(std::max(0, grid.nx() - 1));
    const std::size_t v_per_row = static_cast<std::size_t>(grid.nx());
    std::vector<double> hu(static_cast<std::size_t>(grid.ny()) * h_per_row);
    std::vector<double> vu(static_cast<std::size_t>(std::max(0, grid.ny() - 1)) * v_per_row);
    parallel_for(0, static_cast<std::size_t>(grid.ny()), 4, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t y = lo; y < hi; ++y) {
        for (int x = 0; x + 1 < grid.nx(); ++x) {
          hu[y * h_per_row + static_cast<std::size_t>(x)] =
              grid.h_usage(x, static_cast<int>(y));
        }
      }
    });
    parallel_for(0, static_cast<std::size_t>(std::max(0, grid.ny() - 1)), 4,
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t y = lo; y < hi; ++y) {
                     for (int x = 0; x < grid.nx(); ++x) {
                       vu[y * v_per_row + static_cast<std::size_t>(x)] =
                           grid.v_usage(x, static_cast<int>(y));
                     }
                   }
                 });
    const double h_cap = std::max(options.min_capacity, options.capacity_factor * p90(hu));
    const double v_cap = std::max(options.min_capacity, options.capacity_factor * p90(vu));
    grid.set_capacities(h_cap, v_cap);
  }
  result.calibrated_h_cap = grid.h_capacity();
  result.calibrated_v_cap = grid.v_capacity();

  // Negotiated rip-up and reroute.
  for (int round = 0; round < options.rrr_iterations; ++round) {
    if (grid.total_overflow() <= 0.0) break;
    ++result.rrr_rounds_used;
    // Add history on overflowed edges: rows are disjoint, so row-parallel
    // writes touch distinct grid cells.
    parallel_for(0, static_cast<std::size_t>(grid.ny()), 4, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t yy = lo; yy < hi; ++yy) {
        const int y = static_cast<int>(yy);
        for (int x = 0; x + 1 < grid.nx(); ++x) {
          if (grid.h_usage(x, y) > grid.h_capacity()) {
            grid.add_h_history(x, y, options.history_increment);
          }
        }
        if (y + 1 < grid.ny()) {
          for (int x = 0; x < grid.nx(); ++x) {
            if (grid.v_usage(x, y) > grid.v_capacity()) {
              grid.add_v_history(x, y, options.history_increment);
            }
          }
        }
      }
    });
    // Collect connections through overflowed edges: parallel per-connection
    // hit flags (read-only grid scan), then an in-order sweep so the victim
    // list — and with it the reroute order — matches the serial router.
    std::vector<char> hit_flags(result.connections.size(), 0);
    parallel_for(0, result.connections.size(), 16, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t c = lo; c < hi; ++c) {
        const auto& path = result.connections[c].path;
        bool hit = false;
        for (std::size_t i = 1; i < path.size() && !hit; ++i) {
          const GCell& p = path[i - 1];
          const GCell& q = path[i];
          if (p.y == q.y) {
            hit = grid.h_usage(std::min(p.x, q.x), p.y) > grid.h_capacity();
          } else {
            hit = grid.v_usage(p.x, std::min(p.y, q.y)) > grid.v_capacity();
          }
        }
        hit_flags[c] = hit ? 1 : 0;
      }
    });
    std::vector<int> victims;
    for (std::size_t c = 0; c < result.connections.size(); ++c) {
      if (hit_flags[c]) victims.push_back(static_cast<int>(c));
    }
    if (victims.empty()) break;
    m_ripups.add(victims.size());
    m_rrr_rounds.add();
    for (int c : victims) {
      RoutedConnection& conn = result.connections[static_cast<std::size_t>(c)];
      rip_up(grid, conn.path);
      const GCell a = conn.path.front();
      const GCell b = conn.path.back();
      conn.path = maze_route(grid, a, b, options.maze_margin);
    }
    TS_DEBUG("GR round %d: %zu victims, overflow %.1f", round, victims.size(),
             grid.total_overflow());
  }

  // Final accounting: per-connection lengths in parallel, serial fold so the
  // float sum matches the historical connection order bit for bit.
  std::vector<double> conn_len(result.connections.size(), 0.0);
  parallel_for(0, result.connections.size(), 32, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      const RoutedConnection& conn = result.connections[c];
      const SteinerTree& tree = forest.trees[static_cast<std::size_t>(conn.tree)];
      const SteinerEdge& e = tree.edges[static_cast<std::size_t>(conn.edge)];
      conn_len[c] = conn.length_dbu(grid, tree.nodes[static_cast<std::size_t>(e.a)].pos,
                                    tree.nodes[static_cast<std::size_t>(e.b)].pos);
    }
  });
  for (double len : conn_len) result.wirelength_dbu += len;
  result.total_overflow = grid.total_overflow();
  result.overflowed_edges = grid.num_overflowed_edges();
  m_overflow.set(result.total_overflow);
  return result;
}

}  // namespace tsteiner
