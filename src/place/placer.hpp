// Placement substrate.
//
// The paper takes placements from Cadence Innovus; this reproduction uses a
// light-weight analytic-style placer: random spread, iterative weighted-
// median improvement (a classic force-directed relaxation that minimizes
// HPWL), then Tetris-style row legalization. The output quality is not the
// point — TSteiner only needs a placement with realistic net locality.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace tsteiner {

struct PlacerOptions {
  int iterations = 16;      ///< median-improvement passes
  double damping = 0.75;    ///< fraction of the median step taken per pass
  double noise = 0.5;       ///< jitter (sites) to break ties before legalize
  std::uint64_t seed = 7;
  /// Optional timing-driven net weights (paper ref [1]'s net-weighting idea
  /// at this placer's scale): per-net multiplicity in the median pull.
  /// Empty = uniform. Weights are rounded to a repetition count in [1, 8].
  std::vector<double> net_weights;
};

/// Places all cells of `design` inside its die; positions are legalized to
/// integer sites with at most one cell start per site.
void place_design(Design& design, const PlacerOptions& options = {});

/// Total half-perimeter wirelength over all nets (DBU).
double total_hpwl(const Design& design);

/// Weighted HPWL; `net_weights` as in PlacerOptions (empty = uniform).
double weighted_hpwl(const Design& design, const std::vector<double>& net_weights);

/// Derive net weights from endpoint criticality: nets whose sinks sit on
/// paths with worse slack get proportionally larger weights in [1, max_w].
/// `endpoint_slack_by_pin` maps pin id -> slack (ns) for endpoint pins
/// (others ignored); criticality propagates to each net from its sinks.
std::vector<double> timing_net_weights(const Design& design,
                                       const std::vector<double>& pin_arrival,
                                       double clock_period, double max_w = 4.0);

}  // namespace tsteiner
