#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace tsteiner {

namespace {

/// Median of a small scratch vector (averaged middle pair for even sizes).
double median_of(std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 0) {
    const double lo =
        *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (lo + hi);
  }
  return hi;
}

/// Tetris-style legalization: cells sorted by desired x are packed into rows
/// near their desired y; each cell occupies ceil(area) sites of the row.
void legalize(Design& d, Rng& rng) {
  const RectI die = d.die();
  const auto num_rows = static_cast<std::size_t>(std::max<std::int64_t>(1, die.height()));
  std::vector<std::int64_t> next_free(num_rows, die.lo.x);

  std::vector<int> order(d.cells().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return d.cell(a).pos.x < d.cell(b).pos.x;
  });

  for (int cid : order) {
    Cell& c = d.cell(cid);
    const auto width =
        static_cast<std::int64_t>(std::ceil(d.library().type(c.type).area));
    const auto desired_row = static_cast<std::int64_t>(c.pos.y - die.lo.y);
    std::int64_t best_row = -1;
    double best_cost = 1e30;
    const std::int64_t span = std::max<std::int64_t>(8, static_cast<std::int64_t>(num_rows) / 8);
    const std::int64_t lo = std::clamp<std::int64_t>(desired_row - span, 0,
                                                     static_cast<std::int64_t>(num_rows) - 1);
    const std::int64_t hi = std::clamp<std::int64_t>(desired_row + span, 0,
                                                     static_cast<std::int64_t>(num_rows) - 1);
    for (std::int64_t r = lo; r <= hi; ++r) {
      const std::int64_t x = std::max(next_free[static_cast<std::size_t>(r)], c.pos.x);
      if (x + width > die.hi.x) continue;  // row full past desired position
      const double cost = std::abs(static_cast<double>(r - desired_row)) +
                          0.5 * std::abs(static_cast<double>(x - c.pos.x));
      if (cost < best_cost) {
        best_cost = cost;
        best_row = r;
      }
    }
    std::int64_t x;
    if (best_row >= 0) {
      x = std::max(next_free[static_cast<std::size_t>(best_row)], c.pos.x);
    } else {
      // Fall back to the emptiest row and pack at its frontier — keeps every
      // placement inside the die and one cell per site.
      best_row = static_cast<std::int64_t>(
          std::min_element(next_free.begin(), next_free.end()) - next_free.begin());
      x = next_free[static_cast<std::size_t>(best_row)];
    }
    c.pos = {std::clamp(x, die.lo.x, die.hi.x), die.lo.y + best_row};
    next_free[static_cast<std::size_t>(best_row)] = c.pos.x + width;
    (void)rng;
  }
}

}  // namespace

void place_design(Design& design, const PlacerOptions& options) {
  Rng rng(options.seed);
  const RectI die = design.die();

  // Random initial spread.
  for (const Cell& c : design.cells()) {
    design.cell(c.id).pos = {rng.uniform_int(die.lo.x, die.hi.x),
                             rng.uniform_int(die.lo.y, die.hi.y)};
  }

  // Iterative weighted-median relaxation over connected pin positions.
  // Net weights enter as repetition counts: a heavier net pulls the median
  // toward its counterpart more strongly.
  auto weight_of = [&options](int net_id) {
    if (options.net_weights.empty()) return 1;
    const double w = options.net_weights[static_cast<std::size_t>(net_id)];
    return std::clamp(static_cast<int>(std::lround(w)), 1, 8);
  };
  std::vector<double> xs;
  std::vector<double> ys;
  for (int it = 0; it < options.iterations; ++it) {
    for (const Cell& cref : design.cells()) {
      Cell& c = design.cell(cref.id);
      xs.clear();
      ys.clear();
      auto add_counterpart = [&](int pin_id, int repeats) {
        const Pin& p = design.pin(pin_id);
        if (p.cell == c.id) return;  // self
        const PointI pos = design.pin_position(pin_id);
        for (int r = 0; r < repeats; ++r) {
          xs.push_back(static_cast<double>(pos.x));
          ys.push_back(static_cast<double>(pos.y));
        }
      };
      for (int in_pin : c.input_pins) {
        const int net_id = design.pin(in_pin).net;
        if (net_id >= 0) {
          add_counterpart(design.net(net_id).driver_pin, weight_of(net_id));
        }
      }
      const int out_net = design.pin(c.output_pin).net;
      if (out_net >= 0) {
        for (int s : design.net(out_net).sink_pins) add_counterpart(s, weight_of(out_net));
      }
      if (xs.empty()) continue;
      const double mx = median_of(xs);
      const double my = median_of(ys);
      const double nx = static_cast<double>(c.pos.x) +
                        options.damping * (mx - static_cast<double>(c.pos.x)) +
                        rng.uniform(-options.noise, options.noise);
      const double ny = static_cast<double>(c.pos.y) +
                        options.damping * (my - static_cast<double>(c.pos.y)) +
                        rng.uniform(-options.noise, options.noise);
      c.pos = {std::clamp(static_cast<std::int64_t>(std::llround(nx)), die.lo.x, die.hi.x),
               std::clamp(static_cast<std::int64_t>(std::llround(ny)), die.lo.y, die.hi.y)};
    }
  }

  legalize(design, rng);
}

double total_hpwl(const Design& design) { return weighted_hpwl(design, {}); }

double weighted_hpwl(const Design& design, const std::vector<double>& net_weights) {
  double total = 0.0;
  for (const Net& n : design.nets()) {
    if (n.sink_pins.empty()) continue;
    RectI bb{design.pin_position(n.driver_pin), design.pin_position(n.driver_pin)};
    for (int s : n.sink_pins) bb.expand(design.pin_position(s));
    const double w =
        net_weights.empty() ? 1.0 : net_weights[static_cast<std::size_t>(n.id)];
    total += w * static_cast<double>(bb.half_perimeter());
  }
  return total;
}

std::vector<double> timing_net_weights(const Design& design,
                                       const std::vector<double>& pin_arrival,
                                       double clock_period, double max_w) {
  std::vector<double> weights(design.nets().size(), 1.0);
  if (clock_period <= 0.0) return weights;
  for (const Net& n : design.nets()) {
    double worst = 0.0;
    for (int s : n.sink_pins) {
      worst = std::max(worst, pin_arrival[static_cast<std::size_t>(s)]);
    }
    // criticality 0 at arrival = clock/2, 1 at arrival = clock (and beyond).
    const double crit = std::clamp(2.0 * worst / clock_period - 1.0, 0.0, 2.0);
    weights[static_cast<std::size_t>(n.id)] = 1.0 + (max_w - 1.0) * std::min(1.0, crit);
  }
  return weights;
}

}  // namespace tsteiner
