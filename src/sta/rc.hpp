// RC extraction and Elmore delay over Steiner-tree topologies.
//
// Each net's routed (or, pre-routing, geometric) Steiner tree becomes an RC
// tree: per-edge resistance/capacitance from length, via resistance from GR
// bends, sink pin capacitances at the leaves. Elmore delays from the driver
// to every sink plus a PERI-style slew ramp feed the STA engine.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "route/global_router.hpp"
#include "route/layer_assign.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

struct NetTiming {
  /// Total load seen by the driver: all wire capacitance + sink pin caps.
  double total_cap_pf = 0.0;
  /// Elmore delay (ns) driver -> sink, aligned with Net::sink_pins.
  std::vector<double> sink_delay_ns;
  /// Slew-degradation ramp (ns) per sink: ln(9) * elmore, combined with the
  /// driver slew in quadrature by the STA engine.
  std::vector<double> sink_ramp_ns;
};

/// Extract timing for the net of `tree`. When `gr` is non-null, edge
/// lengths/bends come from the routed paths of `gr` (sign-off mode);
/// otherwise edge geometry is used directly (pre-routing estimate).
/// `tree_index` is the tree's index inside the forest that `gr` routed.
/// An optional layer assignment scales each edge's R/C by its connection's
/// layer-pair multipliers.
NetTiming extract_net_timing(const Design& design, const SteinerTree& tree,
                             const GlobalRouteResult* gr, int tree_index,
                             const LayerAssignment* layers = nullptr);

}  // namespace tsteiner
