#include "sta/rc.hpp"

#include <cmath>
#include <stdexcept>

namespace tsteiner {

NetTiming extract_net_timing(const Design& design, const SteinerTree& tree,
                             const GlobalRouteResult* gr, int tree_index,
                             const LayerAssignment* layers) {
  const CellLibrary& lib = design.library();
  const Net& net = design.net(tree.net);
  const std::size_t n = tree.nodes.size();

  const std::vector<int> parent = tree.parents_from_driver();

  // Per-edge R and C, keyed by child node (edge = child -> parent).
  std::vector<double> edge_r(n, 0.0);
  std::vector<double> edge_c(n, 0.0);
  // Children lists + topological (BFS) order from the driver.
  std::vector<std::vector<int>> children(n);
  std::vector<int> order;
  order.reserve(n);
  order.push_back(tree.driver_node);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int u = order[i];
    for (std::size_t v = 0; v < n; ++v) {
      if (parent[v] == u) {
        children[static_cast<std::size_t>(u)].push_back(static_cast<int>(v));
        order.push_back(static_cast<int>(v));
      }
    }
  }
  if (order.size() != n) throw std::runtime_error("RC extraction on a disconnected tree");

  // Edge geometry: routed length + bends (sign-off) or Manhattan geometry.
  for (std::size_t e = 0; e < tree.edges.size(); ++e) {
    const SteinerEdge& edge = tree.edges[e];
    // Identify the child endpoint of this edge in the rooted tree.
    int child;
    if (parent[static_cast<std::size_t>(edge.a)] == edge.b) {
      child = edge.a;
    } else if (parent[static_cast<std::size_t>(edge.b)] == edge.a) {
      child = edge.b;
    } else {
      throw std::runtime_error("tree edge inconsistent with parent array");
    }
    const PointF& pa = tree.nodes[static_cast<std::size_t>(edge.a)].pos;
    const PointF& pb = tree.nodes[static_cast<std::size_t>(edge.b)].pos;
    double len = manhattan(pa, pb);
    int bends = (pa.x != pb.x && pa.y != pb.y) ? 1 : 0;
    double r_mult = 1.0;
    double c_mult = 1.0;
    if (gr != nullptr) {
      const int ci = gr->conn_of_edge[static_cast<std::size_t>(tree_index)][e];
      if (ci >= 0) {
        const RoutedConnection& conn = gr->connections[static_cast<std::size_t>(ci)];
        len = conn.length_dbu(gr->grid, pa, pb);
        bends = conn.num_bends();
        if (layers != nullptr) {
          r_mult = layers->r_mult(ci);
          c_mult = layers->c_mult(ci);
          if (layers->layer_of_connection[static_cast<std::size_t>(ci)] > 0) {
            bends += 2;  // up/down vias into the assigned layer pair
          }
        }
      }
    }
    edge_r[static_cast<std::size_t>(child)] =
        lib.wire_res_kohm_per_dbu() * len * r_mult + lib.via_res_kohm() * bends;
    edge_c[static_cast<std::size_t>(child)] = lib.wire_cap_pf_per_dbu() * len * c_mult;
  }

  // Node loads: sink pin caps + half of each adjacent edge's wire cap.
  std::vector<double> node_load(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const SteinerNode& node = tree.nodes[v];
    if (!node.is_steiner() && node.pin != net.driver_pin) {
      node_load[v] += design.pin_cap(node.pin);
    }
    if (parent[v] >= 0) {
      node_load[v] += 0.5 * edge_c[v];
      node_load[static_cast<std::size_t>(parent[v])] += 0.5 * edge_c[v];
    }
  }

  // Subtree capacitance (reverse BFS order) and Elmore delays (forward).
  std::vector<double> subtree(node_load);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int u = *it;
    for (int c : children[static_cast<std::size_t>(u)]) {
      subtree[static_cast<std::size_t>(u)] += subtree[static_cast<std::size_t>(c)];
    }
  }
  std::vector<double> elmore(n, 0.0);
  for (int u : order) {
    if (parent[static_cast<std::size_t>(u)] < 0) continue;
    elmore[static_cast<std::size_t>(u)] =
        elmore[static_cast<std::size_t>(parent[static_cast<std::size_t>(u)])] +
        edge_r[static_cast<std::size_t>(u)] * subtree[static_cast<std::size_t>(u)];
  }

  // Collect per-sink results in Net::sink_pins order.
  NetTiming t;
  t.total_cap_pf = subtree[static_cast<std::size_t>(tree.driver_node)];
  t.sink_delay_ns.resize(net.sink_pins.size(), 0.0);
  t.sink_ramp_ns.resize(net.sink_pins.size(), 0.0);
  constexpr double kLn9 = 2.1972245773362196;
  for (std::size_t s = 0; s < net.sink_pins.size(); ++s) {
    const int pin_id = net.sink_pins[s];
    int node_idx = -1;
    for (std::size_t v = 0; v < n; ++v) {
      if (tree.nodes[v].pin == pin_id) {
        node_idx = static_cast<int>(v);
        break;
      }
    }
    if (node_idx < 0) throw std::runtime_error("sink pin missing from tree");
    t.sink_delay_ns[s] = elmore[static_cast<std::size_t>(node_idx)];
    t.sink_ramp_ns[s] = kLn9 * elmore[static_cast<std::size_t>(node_idx)];
  }
  return t;
}

}  // namespace tsteiner
