#include "sta/report.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace tsteiner {

namespace {

/// Load seen by a driver pin (0 when its net has no tree).
double driver_load(const Design& design, const SteinerForest& forest,
                   const GlobalRouteResult* gr, int pin_id) {
  const int net_id = design.pin(pin_id).net;
  if (net_id < 0) return 0.0;
  const int t = forest.net_to_tree[static_cast<std::size_t>(net_id)];
  if (t < 0) return 0.0;
  return extract_net_timing(design, forest.trees[static_cast<std::size_t>(t)], gr, t)
      .total_cap_pf;
}

}  // namespace

std::vector<TimingPath> extract_critical_paths(const Design& design,
                                               const SteinerForest& forest,
                                               const GlobalRouteResult* gr,
                                               const StaResult& sta, int k) {
  // Rank endpoints by slack.
  std::vector<std::size_t> order(sta.endpoints.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sta.endpoint_slack[a] < sta.endpoint_slack[b];
  });

  std::vector<TimingPath> paths;
  for (std::size_t rank = 0; rank < order.size() && static_cast<int>(paths.size()) < k;
       ++rank) {
    TimingPath path;
    path.endpoint = sta.endpoints[order[rank]];
    path.slack_ns = sta.endpoint_slack[order[rank]];

    int cur = path.endpoint;
    bool through_net = true;  // endpoints are reached via a net arc
    while (true) {
      PathStep step;
      step.pin = cur;
      step.arrival_ns = sta.arrival[static_cast<std::size_t>(cur)];
      step.through_net = through_net;
      path.steps.push_back(step);

      const Pin& p = design.pin(cur);
      if (p.kind == PinKind::kPrimaryInput) break;
      if (p.kind == PinKind::kCellOutput && design.is_register_cell(p.cell)) break;

      if (!p.is_output()) {
        // Sink pin: predecessor is the net driver.
        if (p.net < 0) break;
        cur = design.net(p.net).driver_pin;
        through_net = true;
        continue;
      }
      // Combinational output: pick the input whose arrival + arc delay
      // reproduces this output's arrival (the critical arc).
      const Cell& c = design.cell(p.cell);
      const CellType& t = design.cell_type(p.cell);
      const double load = driver_load(design, forest, gr, cur);
      int best_in = -1;
      double best_val = -1e30;
      for (int ip : c.input_pins) {
        if (design.pin(ip).net < 0) continue;
        const int slot = design.pin(ip).input_slot;
        const TimingArc& arc = t.arcs[static_cast<std::size_t>(slot)];
        const double v = sta.arrival[static_cast<std::size_t>(ip)] +
                         arc.delay.lookup(sta.slew[static_cast<std::size_t>(ip)], load);
        if (v > best_val) {
          best_val = v;
          best_in = ip;
        }
      }
      if (best_in < 0) break;
      cur = best_in;
      through_net = false;
    }
    std::reverse(path.steps.begin(), path.steps.end());
    // Arc increments from consecutive arrivals.
    for (std::size_t i = 1; i < path.steps.size(); ++i) {
      path.steps[i].incr_ns = path.steps[i].arrival_ns - path.steps[i - 1].arrival_ns;
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string format_path(const Design& design, const TimingPath& path) {
  std::ostringstream os;
  os << "endpoint pin " << path.endpoint << "  slack " << path.slack_ns << " ns\n";
  for (const PathStep& s : path.steps) {
    const Pin& p = design.pin(s.pin);
    const char* kind = "port";
    if (p.cell >= 0) kind = design.cell(p.cell).name.c_str();
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-28s pin %-6d %s  arrival %8.4f  incr %8.4f\n", kind,
                  s.pin, s.through_net ? "(net) " : "(cell)", s.arrival_ns, s.incr_ns);
    os << buf;
  }
  return os.str();
}

}  // namespace tsteiner
