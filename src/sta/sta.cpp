#include "sta/sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tsteiner {

double StaResult::slack_of(int pin_id) const {
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (endpoints[i] == pin_id) return endpoint_slack[i];
  }
  throw std::runtime_error("pin is not a timing endpoint");
}

StaResult run_sta(const Design& design, const SteinerForest& forest,
                  const GlobalRouteResult* gr, const StaOptions& options,
                  const LayerAssignment* layers) {
  const std::size_t num_pins = design.pins().size();
  StaResult res;
  res.arrival.assign(num_pins, 0.0);
  res.slew.assign(num_pins, options.primary_input_slew);

  // --- net timing for every net with a tree --------------------------------
  std::vector<NetTiming> net_timing(design.nets().size());
  for (const Net& n : design.nets()) {
    const int t = forest.net_to_tree[static_cast<std::size_t>(n.id)];
    if (t < 0) continue;
    net_timing[static_cast<std::size_t>(n.id)] =
        extract_net_timing(design, forest.trees[static_cast<std::size_t>(t)], gr, t, layers);
  }
  // Where is each sink pin inside its net's sink list?
  std::vector<int> sink_slot(num_pins, -1);
  for (const Net& n : design.nets()) {
    for (std::size_t s = 0; s < n.sink_pins.size(); ++s) {
      sink_slot[static_cast<std::size_t>(n.sink_pins[s])] = static_cast<int>(s);
    }
  }

  auto net_load = [&](int out_pin) {
    const int net_id = design.pin(out_pin).net;
    if (net_id < 0) return 0.0;
    return net_timing[static_cast<std::size_t>(net_id)].total_cap_pf;
  };

  // Arrival/slew at a sink pin given its driver pin's arrival/slew.
  auto propagate_net_to_sink = [&](int sink_pin) {
    const Pin& sp = design.pin(sink_pin);
    const NetTiming& nt = net_timing[static_cast<std::size_t>(sp.net)];
    const int driver = design.net(sp.net).driver_pin;
    const int slot = sink_slot[static_cast<std::size_t>(sink_pin)];
    const double d = nt.sink_delay_ns[static_cast<std::size_t>(slot)];
    const double ramp = nt.sink_ramp_ns[static_cast<std::size_t>(slot)];
    res.arrival[static_cast<std::size_t>(sink_pin)] =
        res.arrival[static_cast<std::size_t>(driver)] + d;
    const double ds = res.slew[static_cast<std::size_t>(driver)];
    res.slew[static_cast<std::size_t>(sink_pin)] = std::sqrt(ds * ds + ramp * ramp);
  };

  // --- startpoints ----------------------------------------------------------
  for (const Pin& p : design.pins()) {
    if (p.kind == PinKind::kPrimaryInput) {
      res.arrival[static_cast<std::size_t>(p.id)] = 0.0;
      res.slew[static_cast<std::size_t>(p.id)] = options.primary_input_slew;
    }
  }
  for (const Cell& c : design.cells()) {
    if (!design.is_register_cell(c.id)) continue;
    const CellType& t = design.cell_type(c.id);
    const TimingArc& ck2q = t.arcs[0];
    const double load = net_load(c.output_pin);
    res.arrival[static_cast<std::size_t>(c.output_pin)] =
        ck2q.delay.lookup(options.clock_source_slew, load);
    res.slew[static_cast<std::size_t>(c.output_pin)] =
        ck2q.out_slew.lookup(options.clock_source_slew, load);
  }

  // --- combinational propagation in topological order -----------------------
  for (int cid : design.combinational_topo_order()) {
    const Cell& c = design.cell(cid);
    const CellType& t = design.cell_type(cid);
    const double load = net_load(c.output_pin);
    double out_arrival = 0.0;
    double out_slew = options.primary_input_slew;
    bool any = false;
    for (int in_pin : c.input_pins) {
      if (design.pin(in_pin).net < 0) continue;
      propagate_net_to_sink(in_pin);
      const int slot = design.pin(in_pin).input_slot;
      const TimingArc& arc = t.arcs[static_cast<std::size_t>(slot)];
      const double in_slew = res.slew[static_cast<std::size_t>(in_pin)];
      const double a =
          res.arrival[static_cast<std::size_t>(in_pin)] + arc.delay.lookup(in_slew, load);
      if (!any || a > out_arrival) {
        out_arrival = a;
        out_slew = arc.out_slew.lookup(in_slew, load);
        any = true;
      }
    }
    res.arrival[static_cast<std::size_t>(c.output_pin)] = out_arrival;
    res.slew[static_cast<std::size_t>(c.output_pin)] = out_slew;
  }

  // --- endpoints -------------------------------------------------------------
  res.endpoints = design.endpoint_pins();
  res.endpoint_slack.reserve(res.endpoints.size());
  res.wns = res.endpoints.empty() ? 0.0 : std::numeric_limits<double>::infinity();
  for (int ep : res.endpoints) {
    if (design.pin(ep).net >= 0) propagate_net_to_sink(ep);
    const double arrival = res.arrival[static_cast<std::size_t>(ep)];
    double required = design.clock_period();
    if (design.pin(ep).kind == PinKind::kCellInput) {
      required -= design.cell_type(design.pin(ep).cell).setup_ns;
    }
    const double slack = required - arrival;
    res.endpoint_slack.push_back(slack);
    res.wns = std::min(res.wns, slack);
    res.tns += std::min(0.0, slack);
    if (slack < 0.0) ++res.num_violations;
    res.max_arrival = std::max(res.max_arrival, arrival);
  }
  for (double a : res.arrival) res.max_arrival = std::max(res.max_arrival, a);

  // --- electrical rule checks -------------------------------------------------
  for (const Net& n : design.nets()) {
    const double load = net_timing[static_cast<std::size_t>(n.id)].total_cap_pf;
    res.worst_cap_pf = std::max(res.worst_cap_pf, load);
    if (load > options.max_cap_pf) ++res.num_cap_violations;
    for (int s : n.sink_pins) {
      const double slew = res.slew[static_cast<std::size_t>(s)];
      res.worst_slew_ns = std::max(res.worst_slew_ns, slew);
      if (slew > options.max_slew_ns) ++res.num_slew_violations;
    }
  }
  return res;
}

}  // namespace tsteiner
