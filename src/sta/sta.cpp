#include "sta/sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace tsteiner {

double StaResult::slack_of(int pin_id) const {
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (endpoints[i] == pin_id) return endpoint_slack[i];
  }
  throw std::runtime_error("pin is not a timing endpoint");
}

StaResult run_sta(const Design& design, const SteinerForest& forest,
                  const GlobalRouteResult* gr, const StaOptions& options,
                  const LayerAssignment* layers) {
  TS_TRACE_SPAN_CAT("sta.full", "sta");
  static obs::Counter& m_full_runs = obs::metrics().counter("sta.full_runs");
  m_full_runs.add();
  const std::size_t num_pins = design.pins().size();
  StaResult res;
  res.arrival.assign(num_pins, 0.0);
  res.slew.assign(num_pins, options.primary_input_slew);

  // --- net timing for every net with a tree --------------------------------
  // Nets are independent: RC extraction + Elmore per net in parallel, each
  // writing only its own NetTiming slot.
  std::vector<NetTiming> net_timing(design.nets().size());
  parallel_for(0, design.nets().size(), 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t ni = lo; ni < hi; ++ni) {
      const Net& n = design.nets()[ni];
      const int t = forest.net_to_tree[static_cast<std::size_t>(n.id)];
      if (t < 0) continue;
      net_timing[static_cast<std::size_t>(n.id)] =
          extract_net_timing(design, forest.trees[static_cast<std::size_t>(t)], gr, t, layers);
    }
  });
  // Where is each sink pin inside its net's sink list?
  std::vector<int> sink_slot(num_pins, -1);
  for (const Net& n : design.nets()) {
    for (std::size_t s = 0; s < n.sink_pins.size(); ++s) {
      sink_slot[static_cast<std::size_t>(n.sink_pins[s])] = static_cast<int>(s);
    }
  }

  auto net_load = [&](int out_pin) {
    const int net_id = design.pin(out_pin).net;
    if (net_id < 0) return 0.0;
    return net_timing[static_cast<std::size_t>(net_id)].total_cap_pf;
  };

  // Arrival/slew at a sink pin given its driver pin's arrival/slew.
  auto propagate_net_to_sink = [&](int sink_pin) {
    const Pin& sp = design.pin(sink_pin);
    const NetTiming& nt = net_timing[static_cast<std::size_t>(sp.net)];
    const int driver = design.net(sp.net).driver_pin;
    const int slot = sink_slot[static_cast<std::size_t>(sink_pin)];
    const double d = nt.sink_delay_ns[static_cast<std::size_t>(slot)];
    const double ramp = nt.sink_ramp_ns[static_cast<std::size_t>(slot)];
    res.arrival[static_cast<std::size_t>(sink_pin)] =
        res.arrival[static_cast<std::size_t>(driver)] + d;
    const double ds = res.slew[static_cast<std::size_t>(driver)];
    res.slew[static_cast<std::size_t>(sink_pin)] = std::sqrt(ds * ds + ramp * ramp);
  };

  // --- startpoints ----------------------------------------------------------
  for (const Pin& p : design.pins()) {
    if (p.kind == PinKind::kPrimaryInput) {
      res.arrival[static_cast<std::size_t>(p.id)] = 0.0;
      res.slew[static_cast<std::size_t>(p.id)] = options.primary_input_slew;
    }
  }
  // Register CK->Q startpoints: each cell writes only its own output pin.
  parallel_for(0, design.cells().size(), 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t ci = lo; ci < hi; ++ci) {
      const Cell& c = design.cells()[ci];
      if (!design.is_register_cell(c.id)) continue;
      const CellType& t = design.cell_type(c.id);
      const TimingArc& ck2q = t.arcs[0];
      const double load = net_load(c.output_pin);
      res.arrival[static_cast<std::size_t>(c.output_pin)] =
          ck2q.delay.lookup(options.clock_source_slew, load);
      res.slew[static_cast<std::size_t>(c.output_pin)] =
          ck2q.out_slew.lookup(options.clock_source_slew, load);
    }
  });

  // --- combinational propagation, parallel within each topological level ----
  // level(cell) = 1 + max(level of combinational fanin cells): a cell only
  // reads arrivals of drivers at strictly lower levels (or startpoints), and
  // writes only its own input-sink and output pins, so cells within one
  // level are data-independent.
  const std::vector<int> topo = design.combinational_topo_order();
  std::vector<int> cell_level(design.cells().size(), 0);
  int max_level = 0;
  for (int cid : topo) {
    const Cell& c = design.cell(cid);
    int lvl = 0;
    for (int in_pin : c.input_pins) {
      const int net_id = design.pin(in_pin).net;
      if (net_id < 0) continue;
      const Pin& drv = design.pin(design.net(net_id).driver_pin);
      if (drv.cell >= 0 && !design.is_register_cell(drv.cell)) {
        lvl = std::max(lvl, cell_level[static_cast<std::size_t>(drv.cell)] + 1);
      }
    }
    cell_level[static_cast<std::size_t>(cid)] = lvl;
    max_level = std::max(max_level, lvl);
  }
  // Bucket cells by level, preserving topological order within a level.
  std::vector<std::vector<int>> level_cells(static_cast<std::size_t>(max_level) + 1);
  for (int cid : topo) {
    level_cells[static_cast<std::size_t>(cell_level[static_cast<std::size_t>(cid)])]
        .push_back(cid);
  }

  auto propagate_cell = [&](int cid) {
    const Cell& c = design.cell(cid);
    const CellType& t = design.cell_type(cid);
    const double load = net_load(c.output_pin);
    double out_arrival = 0.0;
    double out_slew = options.primary_input_slew;
    bool any = false;
    for (int in_pin : c.input_pins) {
      if (design.pin(in_pin).net < 0) continue;
      propagate_net_to_sink(in_pin);
      const int slot = design.pin(in_pin).input_slot;
      const TimingArc& arc = t.arcs[static_cast<std::size_t>(slot)];
      const double in_slew = res.slew[static_cast<std::size_t>(in_pin)];
      const double a =
          res.arrival[static_cast<std::size_t>(in_pin)] + arc.delay.lookup(in_slew, load);
      if (!any || a > out_arrival) {
        out_arrival = a;
        out_slew = arc.out_slew.lookup(in_slew, load);
        any = true;
      }
    }
    res.arrival[static_cast<std::size_t>(c.output_pin)] = out_arrival;
    res.slew[static_cast<std::size_t>(c.output_pin)] = out_slew;
  };

  for (const std::vector<int>& cells : level_cells) {
    parallel_for(0, cells.size(), 8, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) propagate_cell(cells[i]);
    });
  }

  // --- endpoints -------------------------------------------------------------
  // Parallel map over endpoints (each writes its own arrival/slew/slack
  // slot), then a serial fold for the WNS/TNS scalars — bit-identical to the
  // historical endpoint loop for any thread count.
  res.endpoints = design.endpoint_pins();
  res.endpoint_slack.assign(res.endpoints.size(), 0.0);
  parallel_for(0, res.endpoints.size(), 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const int ep = res.endpoints[i];
      if (design.pin(ep).net >= 0) propagate_net_to_sink(ep);
      const double arrival = res.arrival[static_cast<std::size_t>(ep)];
      double required = design.clock_period();
      if (design.pin(ep).kind == PinKind::kCellInput) {
        required -= design.cell_type(design.pin(ep).cell).setup_ns;
      }
      res.endpoint_slack[i] = required - arrival;
    }
  });
  res.wns = res.endpoints.empty() ? 0.0 : std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < res.endpoints.size(); ++i) {
    const double slack = res.endpoint_slack[i];
    res.wns = std::min(res.wns, slack);
    res.tns += std::min(0.0, slack);
    if (slack < 0.0) ++res.num_violations;
    res.max_arrival =
        std::max(res.max_arrival,
                 res.arrival[static_cast<std::size_t>(res.endpoints[i])]);
  }
  // max over all pins: max is grouping-invariant, so the deterministic
  // chunked reduce is bit-identical to the serial scan.
  res.max_arrival = std::max(
      res.max_arrival,
      parallel_reduce(
          0, res.arrival.size(), 4096, -std::numeric_limits<double>::infinity(),
          [&](std::size_t lo, std::size_t hi) {
            double m = -std::numeric_limits<double>::infinity();
            for (std::size_t i = lo; i < hi; ++i) m = std::max(m, res.arrival[i]);
            return m;
          },
          [](double a, double b) { return std::max(a, b); }));

  // --- electrical rule checks -------------------------------------------------
  for (const Net& n : design.nets()) {
    const double load = net_timing[static_cast<std::size_t>(n.id)].total_cap_pf;
    res.worst_cap_pf = std::max(res.worst_cap_pf, load);
    if (load > options.max_cap_pf) ++res.num_cap_violations;
    for (int s : n.sink_pins) {
      const double slew = res.slew[static_cast<std::size_t>(s)];
      res.worst_slew_ns = std::max(res.worst_slew_ns, slew);
      if (slew > options.max_slew_ns) ++res.num_slew_violations;
    }
  }
  return res;
}

}  // namespace tsteiner
