#include "sta/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace tsteiner {

IncrementalSta::IncrementalSta(const Design& design, const StaOptions& options)
    : design_(&design), options_(options) {
  sink_slot_.assign(design.pins().size(), -1);
  for (const Net& n : design.nets()) {
    for (std::size_t s = 0; s < n.sink_pins.size(); ++s) {
      sink_slot_[static_cast<std::size_t>(n.sink_pins[s])] = static_cast<int>(s);
    }
  }
  topo_order_ = design.combinational_topo_order();
  topo_index_.assign(design.cells().size(), -1);
  for (std::size_t i = 0; i < topo_order_.size(); ++i) {
    topo_index_[static_cast<std::size_t>(topo_order_[i])] = static_cast<int>(i);
  }
}

const StaResult& IncrementalSta::analyze(const SteinerForest& forest,
                                         const GlobalRouteResult* gr) {
  TS_TRACE_SPAN_CAT("sta.incremental_analyze", "sta");
  forest_ = &forest;
  gr_ = gr;
  result_ = run_sta(*design_, forest, gr, options_);
  // Cache the per-net timing for incremental updates.
  net_timing_.assign(design_->nets().size(), {});
  for (const Net& n : design_->nets()) {
    const int t = forest.net_to_tree[static_cast<std::size_t>(n.id)];
    if (t < 0) continue;
    net_timing_[static_cast<std::size_t>(n.id)] =
        extract_net_timing(*design_, forest.trees[static_cast<std::size_t>(t)], gr, t);
  }
  last_cells_ = static_cast<long long>(design_->cells().size());
  return result_;
}

void IncrementalSta::propagate_net_sinks(int net_id, std::vector<int>& touched_cells) {
  const Net& net = design_->net(net_id);
  const NetTiming& nt = net_timing_[static_cast<std::size_t>(net_id)];
  const double da = result_.arrival[static_cast<std::size_t>(net.driver_pin)];
  const double ds = result_.slew[static_cast<std::size_t>(net.driver_pin)];
  for (std::size_t s = 0; s < net.sink_pins.size(); ++s) {
    const int sp = net.sink_pins[s];
    result_.arrival[static_cast<std::size_t>(sp)] = da + nt.sink_delay_ns[s];
    const double ramp = nt.sink_ramp_ns[s];
    result_.slew[static_cast<std::size_t>(sp)] = std::sqrt(ds * ds + ramp * ramp);
    const Pin& p = design_->pin(sp);
    if (p.cell >= 0 && !design_->is_register_cell(p.cell)) touched_cells.push_back(p.cell);
  }
}

void IncrementalSta::propagate_cell(int cell_id) {
  const Cell& c = design_->cell(cell_id);
  const CellType& t = design_->cell_type(cell_id);
  const int out_net = design_->pin(c.output_pin).net;
  const double load =
      out_net >= 0 ? net_timing_[static_cast<std::size_t>(out_net)].total_cap_pf : 0.0;
  double out_arrival = 0.0;
  double out_slew = options_.primary_input_slew;
  bool any = false;
  for (int ip : c.input_pins) {
    if (design_->pin(ip).net < 0) continue;
    const int slot = design_->pin(ip).input_slot;
    const TimingArc& arc = t.arcs[static_cast<std::size_t>(slot)];
    const double in_slew = result_.slew[static_cast<std::size_t>(ip)];
    const double a =
        result_.arrival[static_cast<std::size_t>(ip)] + arc.delay.lookup(in_slew, load);
    if (!any || a > out_arrival) {
      out_arrival = a;
      out_slew = arc.out_slew.lookup(in_slew, load);
      any = true;
    }
  }
  result_.arrival[static_cast<std::size_t>(c.output_pin)] = out_arrival;
  result_.slew[static_cast<std::size_t>(c.output_pin)] = out_slew;
}

void IncrementalSta::refresh_endpoints() {
  result_.endpoint_slack.clear();
  result_.wns = result_.endpoints.empty() ? 0.0 : std::numeric_limits<double>::infinity();
  result_.tns = 0.0;
  result_.num_violations = 0;
  // Rebuild max_arrival from scratch exactly as run_sta does: seed 0.0, fold
  // the endpoint arrivals in endpoint order, then take the grouping-invariant
  // max over every pin arrival (folding from the previous value instead
  // would let a stale maximum survive after arrivals shrink).
  result_.max_arrival = 0.0;
  for (int ep : result_.endpoints) {
    const double arrival = result_.arrival[static_cast<std::size_t>(ep)];
    double required = design_->clock_period();
    if (design_->pin(ep).kind == PinKind::kCellInput) {
      required -= design_->cell_type(design_->pin(ep).cell).setup_ns;
    }
    const double slack = required - arrival;
    result_.endpoint_slack.push_back(slack);
    result_.wns = std::min(result_.wns, slack);
    result_.tns += std::min(0.0, slack);
    if (slack < 0.0) ++result_.num_violations;
    result_.max_arrival = std::max(result_.max_arrival, arrival);
  }
  result_.max_arrival = std::max(
      result_.max_arrival,
      parallel_reduce(
          0, result_.arrival.size(), 4096, -std::numeric_limits<double>::infinity(),
          [&](std::size_t lo, std::size_t hi) {
            double m = -std::numeric_limits<double>::infinity();
            for (std::size_t i = lo; i < hi; ++i) m = std::max(m, result_.arrival[i]);
            return m;
          },
          [](double a, double b) { return std::max(a, b); }));
}

const StaResult& IncrementalSta::update(const SteinerForest& forest,
                                        const GlobalRouteResult* gr,
                                        const std::vector<int>& dirty_nets) {
  TS_TRACE_SPAN_CAT("sta.incremental_update", "sta");
  static obs::Counter& m_updates = obs::metrics().counter("sta.incremental_updates");
  m_updates.add();
  forest_ = &forest;
  gr_ = gr;
  last_cells_ = 0;

  // Nothing moved: the cached result is already exact, so skip the endpoint
  // refresh and electrical rescan entirely.
  if (dirty_nets.empty()) return result_;

  // 1. Re-extract dirty nets; seed the worklist with their driver cells
  //    (load changed -> their output arrival changes) and re-propagate their
  //    sinks directly.
  // Worklist keyed by topological index so every cell is processed once and
  // after all its predecessors. Every enqueue targets a combinational sink
  // of the cell (or net) being processed, which sits strictly later in topo
  // order, so a flat queued bitmap swept forward once replaces an ordered
  // set — same processing order, no per-node allocation.
  std::vector<std::uint8_t> queued(topo_order_.size(), 0);
  std::size_t scan_from = topo_order_.size();
  auto enqueue_cell = [&](int cell_id) {
    const int ti = topo_index_[static_cast<std::size_t>(cell_id)];
    if (ti >= 0) {
      queued[static_cast<std::size_t>(ti)] = 1;
      scan_from = std::min(scan_from, static_cast<std::size_t>(ti));
    }
  };

  // Callers assembling dirty lists from per-move records routinely repeat a
  // net (several Steiner points of one tree moved) or include sinkless nets.
  // Re-extracting a net twice would double-propagate its sinks through the
  // worklist seeding below, so dedup here; sinkless nets carry no timing.
  std::vector<std::uint8_t> seen(design_->nets().size(), 0);
  for (int net_id : dirty_nets) {
    if (seen[static_cast<std::size_t>(net_id)]) continue;
    seen[static_cast<std::size_t>(net_id)] = 1;
    if (design_->net(net_id).sink_pins.empty()) continue;
    const int t = forest.net_to_tree[static_cast<std::size_t>(net_id)];
    if (t < 0) continue;
    net_timing_[static_cast<std::size_t>(net_id)] =
        extract_net_timing(*design_, forest.trees[static_cast<std::size_t>(t)], gr, t);
    const Net& net = design_->net(net_id);
    const Pin& drv = design_->pin(net.driver_pin);
    if (drv.cell >= 0) {
      if (design_->is_register_cell(drv.cell)) {
        // CK->Q arrival depends on the (changed) load.
        const CellType& ct = design_->cell_type(drv.cell);
        const double load = net_timing_[static_cast<std::size_t>(net_id)].total_cap_pf;
        result_.arrival[static_cast<std::size_t>(net.driver_pin)] =
            ct.arcs[0].delay.lookup(options_.clock_source_slew, load);
        result_.slew[static_cast<std::size_t>(net.driver_pin)] =
            ct.arcs[0].out_slew.lookup(options_.clock_source_slew, load);
      } else {
        enqueue_cell(drv.cell);  // its cell delay changed via the load
      }
    }
    // Sinks see new wire delays even if the driver arrival is unchanged.
    seed_touched_.clear();
    propagate_net_sinks(net_id, seed_touched_);
    for (int cell : seed_touched_) enqueue_cell(cell);
  }

  // 2. Forward sweep in topological order with change pruning. Pruning on
  //    bit equality (not an epsilon) keeps the update exact: a cached output
  //    that recomputes to the identical bits proves the cached downstream
  //    cone is still consistent, so skipping it cannot diverge from run_sta.
  std::vector<int> touched;
  for (std::size_t ti = scan_from; ti < queued.size(); ++ti) {
    if (queued[ti] == 0) continue;
    const int cell_id = topo_order_[ti];
    ++last_cells_;
    const Cell& c = design_->cell(cell_id);
    const double old_a = result_.arrival[static_cast<std::size_t>(c.output_pin)];
    const double old_s = result_.slew[static_cast<std::size_t>(c.output_pin)];
    propagate_cell(cell_id);
    const double new_a = result_.arrival[static_cast<std::size_t>(c.output_pin)];
    const double new_s = result_.slew[static_cast<std::size_t>(c.output_pin)];
    if (new_a == old_a && new_s == old_s) continue;
    const int out_net = design_->pin(c.output_pin).net;
    if (out_net < 0) continue;
    touched.clear();
    propagate_net_sinks(out_net, touched);
    for (int cell : touched) enqueue_cell(cell);
  }

  // 3. Endpoint metrics + electrical checks over the final state. The
  //    electrical aggregates are integer counts and max-folds — both exact
  //    under any association — so a chunk-parallel reduce over the net list
  //    matches the serial full-run fold bit for bit.
  refresh_endpoints();
  struct Elec {
    long long slew_vios = 0;
    long long cap_vios = 0;
    double worst_slew = 0.0;
    double worst_cap = 0.0;
  };
  const std::vector<Net>& nets = design_->nets();
  const Elec elec = parallel_reduce(
      0, nets.size(), 512, Elec{},
      [&](std::size_t lo, std::size_t hi) {
        Elec e;
        for (std::size_t i = lo; i < hi; ++i) {
          const Net& n = nets[i];
          const double load = net_timing_[static_cast<std::size_t>(n.id)].total_cap_pf;
          e.worst_cap = std::max(e.worst_cap, load);
          if (load > options_.max_cap_pf) ++e.cap_vios;
          for (int s : n.sink_pins) {
            const double slew = result_.slew[static_cast<std::size_t>(s)];
            e.worst_slew = std::max(e.worst_slew, slew);
            if (slew > options_.max_slew_ns) ++e.slew_vios;
          }
        }
        return e;
      },
      [](Elec a, const Elec& b) {
        a.slew_vios += b.slew_vios;
        a.cap_vios += b.cap_vios;
        a.worst_slew = std::max(a.worst_slew, b.worst_slew);
        a.worst_cap = std::max(a.worst_cap, b.worst_cap);
        return a;
      });
  result_.num_slew_violations = elec.slew_vios;
  result_.num_cap_violations = elec.cap_vios;
  result_.worst_slew_ns = elec.worst_slew;
  result_.worst_cap_pf = elec.worst_cap;
  TS_DEBUG("STA update: %zu dirty nets, %lld cells re-evaluated", dirty_nets.size(), last_cells_);
  static obs::Counter& m_cells = obs::metrics().counter("sta.incremental_cells");
  m_cells.add(static_cast<std::uint64_t>(std::max<long long>(0, last_cells_)));
  return result_;
}

}  // namespace tsteiner
