// Incremental STA: after a position-only change to a subset of nets (the
// exact edit Steiner refinement makes), re-extract just those nets' RC and
// re-propagate arrivals only through the affected fan-out cone. Exact — the
// result is bit-identical to a full run_sta on the same inputs (pruning uses
// bit equality, never an epsilon) — but far cheaper when few nets moved
// (oracle probes, iterative refinement, what-if loops). An empty dirty list
// returns the cached result untouched.
#pragma once

#include <vector>

#include "sta/sta.hpp"

namespace tsteiner {

class IncrementalSta {
 public:
  explicit IncrementalSta(const Design& design, const StaOptions& options = {});

  /// Full analysis; establishes the internal state.
  const StaResult& analyze(const SteinerForest& forest, const GlobalRouteResult* gr);

  /// Re-analyze after the Steiner points of `dirty_nets` moved (topology and
  /// connectivity unchanged). `forest`/`gr` reflect the new positions.
  const StaResult& update(const SteinerForest& forest, const GlobalRouteResult* gr,
                          const std::vector<int>& dirty_nets);

  const StaResult& result() const { return result_; }
  /// Cells re-evaluated by the last update (instrumentation for tests).
  long long last_update_cell_count() const { return last_cells_; }

 private:
  void propagate_cell(int cell_id);
  void propagate_net_sinks(int net_id, std::vector<int>& touched_cells);
  void refresh_endpoints();

  const Design* design_;
  StaOptions options_;
  const SteinerForest* forest_ = nullptr;
  const GlobalRouteResult* gr_ = nullptr;
  std::vector<NetTiming> net_timing_;
  std::vector<int> sink_slot_;   ///< per pin: index within its net's sinks
  std::vector<int> topo_index_;  ///< per cell: position in topological order
  std::vector<int> topo_order_;
  StaResult result_;
  std::vector<int> seed_touched_;  ///< scratch for worklist seeding
  long long last_cells_ = 0;
};

}  // namespace tsteiner
