// Graph-based static timing analysis (the sign-off "Innovus" surrogate).
//
// Full forward propagation of arrival times and slews over the timing graph:
// startpoints are primary inputs (arrival 0) and register CK->Q arcs; cell
// delays come from the NLDM tables (input slew x output load), net delays
// from Elmore over the routed Steiner topology. Endpoint slack, WNS and TNS
// follow Eq. (1) of the paper. Passing gr == nullptr analyzes the
// pre-routing estimate (tree geometry instead of routed paths) — the mode
// early-stage optimizers traditionally had to settle for.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "route/global_router.hpp"
#include "sta/rc.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

struct StaOptions {
  double primary_input_slew = 0.03;  ///< ns
  double clock_source_slew = 0.05;   ///< ns, at register CK pins
  /// Electrical rule limits (sign-off reports these alongside slack).
  double max_slew_ns = 0.60;
  double max_cap_pf = 0.30;
};

struct StaResult {
  /// Arrival time (ns) per pin id; 0 for unconnected pins.
  std::vector<double> arrival;
  /// Transition time (ns) per pin id.
  std::vector<double> slew;
  std::vector<int> endpoints;           ///< endpoint pin ids
  std::vector<double> endpoint_slack;   ///< aligned with `endpoints`
  double wns = 0.0;                     ///< min slack (Eq. 1); >= 0 if clean
  double tns = 0.0;                     ///< sum of negative slacks
  long long num_violations = 0;
  double max_arrival = 0.0;
  /// Electrical rule violations: sink pins whose transition exceeds
  /// max_slew_ns, and driver pins whose load exceeds max_cap_pf.
  long long num_slew_violations = 0;
  long long num_cap_violations = 0;
  double worst_slew_ns = 0.0;
  double worst_cap_pf = 0.0;

  /// Slack at one endpoint by pin id (linear scan; for tests/reports).
  double slack_of(int pin_id) const;
};

/// Run sign-off STA: `forest` supplies every net's topology, `gr` (optional)
/// the routed geometry, `layers` (optional) per-connection metal-layer RC
/// multipliers. Nets without a tree (sinkless) contribute no load.
StaResult run_sta(const Design& design, const SteinerForest& forest,
                  const GlobalRouteResult* gr, const StaOptions& options = {},
                  const LayerAssignment* layers = nullptr);

}  // namespace tsteiner
