// Critical-path reporting on top of the STA engine: backtracks the worst
// endpoints through their max-arrival predecessors and renders per-arc
// breakdowns (the report commercial sign-off hands back after
// `report_timing`).
#pragma once

#include <string>
#include <vector>

#include "sta/sta.hpp"

namespace tsteiner {

struct PathStep {
  int pin = -1;
  double arrival_ns = 0.0;
  double incr_ns = 0.0;     ///< delay added by the arc into this pin
  bool through_net = false; ///< true: net arc, false: cell arc
};

struct TimingPath {
  int endpoint = -1;
  double slack_ns = 0.0;
  std::vector<PathStep> steps;  ///< startpoint first
};

/// Extract the `k` worst endpoint paths (most negative slack first). Each
/// path follows, at every cell, the input pin whose (arrival + arc delay)
/// produced the output arrival — i.e. the timing-critical traversal.
std::vector<TimingPath> extract_critical_paths(const Design& design,
                                               const SteinerForest& forest,
                                               const GlobalRouteResult* gr,
                                               const StaResult& sta, int k);

/// Human-readable rendering of one path.
std::string format_path(const Design& design, const TimingPath& path);

}  // namespace tsteiner
