# Empty compiler generated dependencies file for bench_ablation_anchor.
# This may be replaced when dependencies are built.
