file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_anchor.dir/bench_ablation_anchor.cpp.o"
  "CMakeFiles/bench_ablation_anchor.dir/bench_ablation_anchor.cpp.o.d"
  "bench_ablation_anchor"
  "bench_ablation_anchor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_anchor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
