# Empty dependencies file for bench_table3_prediction.
# This may be replaced when dependencies are built.
