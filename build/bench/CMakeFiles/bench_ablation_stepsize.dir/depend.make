# Empty dependencies file for bench_ablation_stepsize.
# This may be replaced when dependencies are built.
