# Empty dependencies file for bench_ablation_lse_gamma.
# This may be replaced when dependencies are built.
