# Empty dependencies file for bench_ablation_mp_iters.
# This may be replaced when dependencies are built.
