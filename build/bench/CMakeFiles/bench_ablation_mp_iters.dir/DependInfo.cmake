
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_mp_iters.cpp" "bench/CMakeFiles/bench_ablation_mp_iters.dir/bench_ablation_mp_iters.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_mp_iters.dir/bench_ablation_mp_iters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/tsteiner_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/tsteiner_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/tsteiner/CMakeFiles/tsteiner_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/tsteiner_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/tsteiner_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/droute/CMakeFiles/tsteiner_droute.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/tsteiner_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/tsteiner_route.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/tsteiner_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/tsteiner_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tsteiner_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsteiner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
