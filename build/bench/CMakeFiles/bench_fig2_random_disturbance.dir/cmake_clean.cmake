file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_random_disturbance.dir/bench_fig2_random_disturbance.cpp.o"
  "CMakeFiles/bench_fig2_random_disturbance.dir/bench_fig2_random_disturbance.cpp.o.d"
  "bench_fig2_random_disturbance"
  "bench_fig2_random_disturbance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_random_disturbance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
