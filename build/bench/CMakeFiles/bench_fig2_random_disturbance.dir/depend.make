# Empty dependencies file for bench_fig2_random_disturbance.
# This may be replaced when dependencies are built.
