file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iterative.dir/bench_ablation_iterative.cpp.o"
  "CMakeFiles/bench_ablation_iterative.dir/bench_ablation_iterative.cpp.o.d"
  "bench_ablation_iterative"
  "bench_ablation_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
