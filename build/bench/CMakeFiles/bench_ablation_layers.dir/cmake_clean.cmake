file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_layers.dir/bench_ablation_layers.cpp.o"
  "CMakeFiles/bench_ablation_layers.dir/bench_ablation_layers.cpp.o.d"
  "bench_ablation_layers"
  "bench_ablation_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
