# Empty dependencies file for bench_table2_timing_opt.
# This may be replaced when dependencies are built.
