file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_timing_opt.dir/bench_table2_timing_opt.cpp.o"
  "CMakeFiles/bench_table2_timing_opt.dir/bench_table2_timing_opt.cpp.o.d"
  "bench_table2_timing_opt"
  "bench_table2_timing_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_timing_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
