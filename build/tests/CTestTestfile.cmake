# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/steiner_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/droute_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/autodiff_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_test[1]_include.cmake")
include("/root/repo/build/tests/tsteiner_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/prim_dijkstra_test[1]_include.cmake")
include("/root/repo/build/tests/layer_assign_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/visualize_test[1]_include.cmake")
include("/root/repo/build/tests/buffering_test[1]_include.cmake")
include("/root/repo/build/tests/track_assign_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_sta_test[1]_include.cmake")
include("/root/repo/build/tests/property2_test[1]_include.cmake")
