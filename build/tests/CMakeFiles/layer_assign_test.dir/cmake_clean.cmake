file(REMOVE_RECURSE
  "CMakeFiles/layer_assign_test.dir/layer_assign_test.cpp.o"
  "CMakeFiles/layer_assign_test.dir/layer_assign_test.cpp.o.d"
  "layer_assign_test"
  "layer_assign_test.pdb"
  "layer_assign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_assign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
