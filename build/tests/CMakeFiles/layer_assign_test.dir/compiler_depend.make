# Empty compiler generated dependencies file for layer_assign_test.
# This may be replaced when dependencies are built.
