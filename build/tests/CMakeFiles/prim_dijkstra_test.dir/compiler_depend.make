# Empty compiler generated dependencies file for prim_dijkstra_test.
# This may be replaced when dependencies are built.
