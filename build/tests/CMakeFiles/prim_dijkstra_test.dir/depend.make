# Empty dependencies file for prim_dijkstra_test.
# This may be replaced when dependencies are built.
