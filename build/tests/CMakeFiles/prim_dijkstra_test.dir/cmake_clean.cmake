file(REMOVE_RECURSE
  "CMakeFiles/prim_dijkstra_test.dir/prim_dijkstra_test.cpp.o"
  "CMakeFiles/prim_dijkstra_test.dir/prim_dijkstra_test.cpp.o.d"
  "prim_dijkstra_test"
  "prim_dijkstra_test.pdb"
  "prim_dijkstra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prim_dijkstra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
