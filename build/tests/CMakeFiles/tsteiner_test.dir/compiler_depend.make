# Empty compiler generated dependencies file for tsteiner_test.
# This may be replaced when dependencies are built.
