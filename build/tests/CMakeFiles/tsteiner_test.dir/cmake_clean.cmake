file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_test.dir/tsteiner_test.cpp.o"
  "CMakeFiles/tsteiner_test.dir/tsteiner_test.cpp.o.d"
  "tsteiner_test"
  "tsteiner_test.pdb"
  "tsteiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
