# Empty dependencies file for incremental_sta_test.
# This may be replaced when dependencies are built.
