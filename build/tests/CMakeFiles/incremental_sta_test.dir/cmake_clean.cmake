file(REMOVE_RECURSE
  "CMakeFiles/incremental_sta_test.dir/incremental_sta_test.cpp.o"
  "CMakeFiles/incremental_sta_test.dir/incremental_sta_test.cpp.o.d"
  "incremental_sta_test"
  "incremental_sta_test.pdb"
  "incremental_sta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_sta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
