# Empty compiler generated dependencies file for droute_test.
# This may be replaced when dependencies are built.
