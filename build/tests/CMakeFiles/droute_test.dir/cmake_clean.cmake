file(REMOVE_RECURSE
  "CMakeFiles/droute_test.dir/droute_test.cpp.o"
  "CMakeFiles/droute_test.dir/droute_test.cpp.o.d"
  "droute_test"
  "droute_test.pdb"
  "droute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
