file(REMOVE_RECURSE
  "CMakeFiles/track_assign_test.dir/track_assign_test.cpp.o"
  "CMakeFiles/track_assign_test.dir/track_assign_test.cpp.o.d"
  "track_assign_test"
  "track_assign_test.pdb"
  "track_assign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_assign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
