file(REMOVE_RECURSE
  "libtsteiner_sta.a"
)
