# Empty dependencies file for tsteiner_sta.
# This may be replaced when dependencies are built.
