file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_sta.dir/incremental.cpp.o"
  "CMakeFiles/tsteiner_sta.dir/incremental.cpp.o.d"
  "CMakeFiles/tsteiner_sta.dir/rc.cpp.o"
  "CMakeFiles/tsteiner_sta.dir/rc.cpp.o.d"
  "CMakeFiles/tsteiner_sta.dir/report.cpp.o"
  "CMakeFiles/tsteiner_sta.dir/report.cpp.o.d"
  "CMakeFiles/tsteiner_sta.dir/sta.cpp.o"
  "CMakeFiles/tsteiner_sta.dir/sta.cpp.o.d"
  "libtsteiner_sta.a"
  "libtsteiner_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
