
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/incremental.cpp" "src/sta/CMakeFiles/tsteiner_sta.dir/incremental.cpp.o" "gcc" "src/sta/CMakeFiles/tsteiner_sta.dir/incremental.cpp.o.d"
  "/root/repo/src/sta/rc.cpp" "src/sta/CMakeFiles/tsteiner_sta.dir/rc.cpp.o" "gcc" "src/sta/CMakeFiles/tsteiner_sta.dir/rc.cpp.o.d"
  "/root/repo/src/sta/report.cpp" "src/sta/CMakeFiles/tsteiner_sta.dir/report.cpp.o" "gcc" "src/sta/CMakeFiles/tsteiner_sta.dir/report.cpp.o.d"
  "/root/repo/src/sta/sta.cpp" "src/sta/CMakeFiles/tsteiner_sta.dir/sta.cpp.o" "gcc" "src/sta/CMakeFiles/tsteiner_sta.dir/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/tsteiner_route.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/tsteiner_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tsteiner_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsteiner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
