file(REMOVE_RECURSE
  "libtsteiner_opt.a"
)
