file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_opt.dir/buffering.cpp.o"
  "CMakeFiles/tsteiner_opt.dir/buffering.cpp.o.d"
  "libtsteiner_opt.a"
  "libtsteiner_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
