# Empty compiler generated dependencies file for tsteiner_opt.
# This may be replaced when dependencies are built.
