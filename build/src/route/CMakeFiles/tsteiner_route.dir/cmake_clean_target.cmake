file(REMOVE_RECURSE
  "libtsteiner_route.a"
)
