file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_route.dir/global_router.cpp.o"
  "CMakeFiles/tsteiner_route.dir/global_router.cpp.o.d"
  "CMakeFiles/tsteiner_route.dir/grid.cpp.o"
  "CMakeFiles/tsteiner_route.dir/grid.cpp.o.d"
  "CMakeFiles/tsteiner_route.dir/layer_assign.cpp.o"
  "CMakeFiles/tsteiner_route.dir/layer_assign.cpp.o.d"
  "libtsteiner_route.a"
  "libtsteiner_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
