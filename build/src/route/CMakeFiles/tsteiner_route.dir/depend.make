# Empty dependencies file for tsteiner_route.
# This may be replaced when dependencies are built.
