file(REMOVE_RECURSE
  "libtsteiner_gnn.a"
)
