file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_gnn.dir/graph_cache.cpp.o"
  "CMakeFiles/tsteiner_gnn.dir/graph_cache.cpp.o.d"
  "CMakeFiles/tsteiner_gnn.dir/model.cpp.o"
  "CMakeFiles/tsteiner_gnn.dir/model.cpp.o.d"
  "CMakeFiles/tsteiner_gnn.dir/serialize.cpp.o"
  "CMakeFiles/tsteiner_gnn.dir/serialize.cpp.o.d"
  "CMakeFiles/tsteiner_gnn.dir/trainer.cpp.o"
  "CMakeFiles/tsteiner_gnn.dir/trainer.cpp.o.d"
  "libtsteiner_gnn.a"
  "libtsteiner_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
