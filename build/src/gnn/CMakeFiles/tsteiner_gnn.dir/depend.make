# Empty dependencies file for tsteiner_gnn.
# This may be replaced when dependencies are built.
