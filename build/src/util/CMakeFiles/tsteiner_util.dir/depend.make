# Empty dependencies file for tsteiner_util.
# This may be replaced when dependencies are built.
