file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_util.dir/log.cpp.o"
  "CMakeFiles/tsteiner_util.dir/log.cpp.o.d"
  "CMakeFiles/tsteiner_util.dir/stats.cpp.o"
  "CMakeFiles/tsteiner_util.dir/stats.cpp.o.d"
  "CMakeFiles/tsteiner_util.dir/svg.cpp.o"
  "CMakeFiles/tsteiner_util.dir/svg.cpp.o.d"
  "CMakeFiles/tsteiner_util.dir/table.cpp.o"
  "CMakeFiles/tsteiner_util.dir/table.cpp.o.d"
  "libtsteiner_util.a"
  "libtsteiner_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
