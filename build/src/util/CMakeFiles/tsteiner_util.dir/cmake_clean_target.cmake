file(REMOVE_RECURSE
  "libtsteiner_util.a"
)
