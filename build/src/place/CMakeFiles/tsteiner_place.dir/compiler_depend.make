# Empty compiler generated dependencies file for tsteiner_place.
# This may be replaced when dependencies are built.
