file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_place.dir/placer.cpp.o"
  "CMakeFiles/tsteiner_place.dir/placer.cpp.o.d"
  "libtsteiner_place.a"
  "libtsteiner_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
