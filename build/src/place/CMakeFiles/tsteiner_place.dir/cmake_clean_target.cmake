file(REMOVE_RECURSE
  "libtsteiner_place.a"
)
