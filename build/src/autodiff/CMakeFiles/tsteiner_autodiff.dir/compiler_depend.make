# Empty compiler generated dependencies file for tsteiner_autodiff.
# This may be replaced when dependencies are built.
