file(REMOVE_RECURSE
  "libtsteiner_autodiff.a"
)
