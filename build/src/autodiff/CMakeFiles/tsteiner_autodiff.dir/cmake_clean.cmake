file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_autodiff.dir/tape.cpp.o"
  "CMakeFiles/tsteiner_autodiff.dir/tape.cpp.o.d"
  "libtsteiner_autodiff.a"
  "libtsteiner_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
