file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_droute.dir/detailed_route.cpp.o"
  "CMakeFiles/tsteiner_droute.dir/detailed_route.cpp.o.d"
  "CMakeFiles/tsteiner_droute.dir/track_assign.cpp.o"
  "CMakeFiles/tsteiner_droute.dir/track_assign.cpp.o.d"
  "libtsteiner_droute.a"
  "libtsteiner_droute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_droute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
