
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/droute/detailed_route.cpp" "src/droute/CMakeFiles/tsteiner_droute.dir/detailed_route.cpp.o" "gcc" "src/droute/CMakeFiles/tsteiner_droute.dir/detailed_route.cpp.o.d"
  "/root/repo/src/droute/track_assign.cpp" "src/droute/CMakeFiles/tsteiner_droute.dir/track_assign.cpp.o" "gcc" "src/droute/CMakeFiles/tsteiner_droute.dir/track_assign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/tsteiner_route.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/tsteiner_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tsteiner_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsteiner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
