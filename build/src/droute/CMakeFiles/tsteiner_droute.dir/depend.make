# Empty dependencies file for tsteiner_droute.
# This may be replaced when dependencies are built.
