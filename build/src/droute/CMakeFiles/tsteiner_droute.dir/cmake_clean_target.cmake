file(REMOVE_RECURSE
  "libtsteiner_droute.a"
)
