# Empty dependencies file for tsteiner_steiner.
# This may be replaced when dependencies are built.
