file(REMOVE_RECURSE
  "libtsteiner_steiner.a"
)
