
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/steiner/edge_shift.cpp" "src/steiner/CMakeFiles/tsteiner_steiner.dir/edge_shift.cpp.o" "gcc" "src/steiner/CMakeFiles/tsteiner_steiner.dir/edge_shift.cpp.o.d"
  "/root/repo/src/steiner/forest_io.cpp" "src/steiner/CMakeFiles/tsteiner_steiner.dir/forest_io.cpp.o" "gcc" "src/steiner/CMakeFiles/tsteiner_steiner.dir/forest_io.cpp.o.d"
  "/root/repo/src/steiner/prim_dijkstra.cpp" "src/steiner/CMakeFiles/tsteiner_steiner.dir/prim_dijkstra.cpp.o" "gcc" "src/steiner/CMakeFiles/tsteiner_steiner.dir/prim_dijkstra.cpp.o.d"
  "/root/repo/src/steiner/rsmt.cpp" "src/steiner/CMakeFiles/tsteiner_steiner.dir/rsmt.cpp.o" "gcc" "src/steiner/CMakeFiles/tsteiner_steiner.dir/rsmt.cpp.o.d"
  "/root/repo/src/steiner/steiner_tree.cpp" "src/steiner/CMakeFiles/tsteiner_steiner.dir/steiner_tree.cpp.o" "gcc" "src/steiner/CMakeFiles/tsteiner_steiner.dir/steiner_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/tsteiner_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsteiner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
