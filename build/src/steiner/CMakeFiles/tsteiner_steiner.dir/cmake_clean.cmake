file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_steiner.dir/edge_shift.cpp.o"
  "CMakeFiles/tsteiner_steiner.dir/edge_shift.cpp.o.d"
  "CMakeFiles/tsteiner_steiner.dir/forest_io.cpp.o"
  "CMakeFiles/tsteiner_steiner.dir/forest_io.cpp.o.d"
  "CMakeFiles/tsteiner_steiner.dir/prim_dijkstra.cpp.o"
  "CMakeFiles/tsteiner_steiner.dir/prim_dijkstra.cpp.o.d"
  "CMakeFiles/tsteiner_steiner.dir/rsmt.cpp.o"
  "CMakeFiles/tsteiner_steiner.dir/rsmt.cpp.o.d"
  "CMakeFiles/tsteiner_steiner.dir/steiner_tree.cpp.o"
  "CMakeFiles/tsteiner_steiner.dir/steiner_tree.cpp.o.d"
  "libtsteiner_steiner.a"
  "libtsteiner_steiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
