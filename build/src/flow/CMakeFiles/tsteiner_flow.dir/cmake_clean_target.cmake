file(REMOVE_RECURSE
  "libtsteiner_flow.a"
)
