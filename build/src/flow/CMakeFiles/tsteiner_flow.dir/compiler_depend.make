# Empty compiler generated dependencies file for tsteiner_flow.
# This may be replaced when dependencies are built.
