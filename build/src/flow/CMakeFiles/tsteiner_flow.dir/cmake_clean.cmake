file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_flow.dir/experiment.cpp.o"
  "CMakeFiles/tsteiner_flow.dir/experiment.cpp.o.d"
  "CMakeFiles/tsteiner_flow.dir/flow.cpp.o"
  "CMakeFiles/tsteiner_flow.dir/flow.cpp.o.d"
  "CMakeFiles/tsteiner_flow.dir/iterative.cpp.o"
  "CMakeFiles/tsteiner_flow.dir/iterative.cpp.o.d"
  "CMakeFiles/tsteiner_flow.dir/visualize.cpp.o"
  "CMakeFiles/tsteiner_flow.dir/visualize.cpp.o.d"
  "libtsteiner_flow.a"
  "libtsteiner_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
