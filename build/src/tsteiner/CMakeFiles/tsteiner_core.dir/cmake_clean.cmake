file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_core.dir/gradient.cpp.o"
  "CMakeFiles/tsteiner_core.dir/gradient.cpp.o.d"
  "CMakeFiles/tsteiner_core.dir/penalty.cpp.o"
  "CMakeFiles/tsteiner_core.dir/penalty.cpp.o.d"
  "CMakeFiles/tsteiner_core.dir/random_move.cpp.o"
  "CMakeFiles/tsteiner_core.dir/random_move.cpp.o.d"
  "CMakeFiles/tsteiner_core.dir/refine.cpp.o"
  "CMakeFiles/tsteiner_core.dir/refine.cpp.o.d"
  "libtsteiner_core.a"
  "libtsteiner_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
