file(REMOVE_RECURSE
  "libtsteiner_core.a"
)
