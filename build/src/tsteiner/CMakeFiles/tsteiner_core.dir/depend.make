# Empty dependencies file for tsteiner_core.
# This may be replaced when dependencies are built.
