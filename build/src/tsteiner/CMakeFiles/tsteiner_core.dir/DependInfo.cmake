
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsteiner/gradient.cpp" "src/tsteiner/CMakeFiles/tsteiner_core.dir/gradient.cpp.o" "gcc" "src/tsteiner/CMakeFiles/tsteiner_core.dir/gradient.cpp.o.d"
  "/root/repo/src/tsteiner/penalty.cpp" "src/tsteiner/CMakeFiles/tsteiner_core.dir/penalty.cpp.o" "gcc" "src/tsteiner/CMakeFiles/tsteiner_core.dir/penalty.cpp.o.d"
  "/root/repo/src/tsteiner/random_move.cpp" "src/tsteiner/CMakeFiles/tsteiner_core.dir/random_move.cpp.o" "gcc" "src/tsteiner/CMakeFiles/tsteiner_core.dir/random_move.cpp.o.d"
  "/root/repo/src/tsteiner/refine.cpp" "src/tsteiner/CMakeFiles/tsteiner_core.dir/refine.cpp.o" "gcc" "src/tsteiner/CMakeFiles/tsteiner_core.dir/refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnn/CMakeFiles/tsteiner_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/tsteiner_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/tsteiner_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tsteiner_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsteiner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
