file(REMOVE_RECURSE
  "libtsteiner_netlist.a"
)
