file(REMOVE_RECURSE
  "CMakeFiles/tsteiner_netlist.dir/design_generator.cpp.o"
  "CMakeFiles/tsteiner_netlist.dir/design_generator.cpp.o.d"
  "CMakeFiles/tsteiner_netlist.dir/design_io.cpp.o"
  "CMakeFiles/tsteiner_netlist.dir/design_io.cpp.o.d"
  "CMakeFiles/tsteiner_netlist.dir/liberty.cpp.o"
  "CMakeFiles/tsteiner_netlist.dir/liberty.cpp.o.d"
  "CMakeFiles/tsteiner_netlist.dir/netlist.cpp.o"
  "CMakeFiles/tsteiner_netlist.dir/netlist.cpp.o.d"
  "libtsteiner_netlist.a"
  "libtsteiner_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsteiner_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
