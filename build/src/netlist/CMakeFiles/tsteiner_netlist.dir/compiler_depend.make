# Empty compiler generated dependencies file for tsteiner_netlist.
# This may be replaced when dependencies are built.
