file(REMOVE_RECURSE
  "CMakeFiles/signoff_analysis.dir/signoff_analysis.cpp.o"
  "CMakeFiles/signoff_analysis.dir/signoff_analysis.cpp.o.d"
  "signoff_analysis"
  "signoff_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signoff_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
