# Empty dependencies file for signoff_analysis.
# This may be replaced when dependencies are built.
