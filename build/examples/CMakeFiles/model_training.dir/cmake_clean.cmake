file(REMOVE_RECURSE
  "CMakeFiles/model_training.dir/model_training.cpp.o"
  "CMakeFiles/model_training.dir/model_training.cpp.o.d"
  "model_training"
  "model_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
