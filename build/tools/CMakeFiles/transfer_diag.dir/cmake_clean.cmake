file(REMOVE_RECURSE
  "CMakeFiles/transfer_diag.dir/transfer_diag.cpp.o"
  "CMakeFiles/transfer_diag.dir/transfer_diag.cpp.o.d"
  "transfer_diag"
  "transfer_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
