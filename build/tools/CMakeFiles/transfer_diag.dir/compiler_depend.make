# Empty compiler generated dependencies file for transfer_diag.
# This may be replaced when dependencies are built.
