# Empty dependencies file for oracle_diag.
# This may be replaced when dependencies are built.
