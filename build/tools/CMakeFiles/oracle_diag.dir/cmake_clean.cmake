file(REMOVE_RECURSE
  "CMakeFiles/oracle_diag.dir/oracle_diag.cpp.o"
  "CMakeFiles/oracle_diag.dir/oracle_diag.cpp.o.d"
  "oracle_diag"
  "oracle_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
