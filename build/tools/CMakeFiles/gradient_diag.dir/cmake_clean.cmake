file(REMOVE_RECURSE
  "CMakeFiles/gradient_diag.dir/gradient_diag.cpp.o"
  "CMakeFiles/gradient_diag.dir/gradient_diag.cpp.o.d"
  "gradient_diag"
  "gradient_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradient_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
