# Empty compiler generated dependencies file for gradient_diag.
# This may be replaced when dependencies are built.
