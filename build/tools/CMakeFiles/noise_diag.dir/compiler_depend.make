# Empty compiler generated dependencies file for noise_diag.
# This may be replaced when dependencies are built.
