file(REMOVE_RECURSE
  "CMakeFiles/noise_diag.dir/noise_diag.cpp.o"
  "CMakeFiles/noise_diag.dir/noise_diag.cpp.o.d"
  "noise_diag"
  "noise_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
