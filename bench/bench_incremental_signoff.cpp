// Incremental sign-off bench: anchors one IncrementalSignoff on a full
// sign-off, then sweeps dirty fractions (1%, 5%, 20%, 100% of movable trees).
// Each round moves that share of trees by small refine-sized nudges, runs
// `update(forest, dirty_nets)`, and re-runs the full Flow::run_signoff on the
// same forest as the reference. The headline `speedup` per fraction is
// full-pipeline wall time over incremental wall time; the exactness gate is
// bitwise — every SignoffMetrics field of every round must match the full
// pipeline exactly, and the process exits nonzero otherwise so CI can gate
// parity at tiny scale and both thread widths.
//
// Results land in BENCH_incremental.json. The ≤5% rows are the ones the
// refine probe cadence actually exercises (a handful of trees move between
// probes); 100% is the worst case and bounds the overhead of taking the
// incremental path when everything moved.
//
// A second, tight-capacity "contention" section perturbs one corner tree per
// round so rip-up-and-reroute runs with provably-untouched windows elsewhere;
// it reports reused/total maze counts (the main sweep's headroom default
// never enters RRR, so its reuse column is a vacuous 0/0 by design).
//
// Knobs: TSTEINER_INC_CELLS (default 16000), TSTEINER_INC_ROUNDS (rounds per
// fraction, default 3), TSTEINER_INC_GCELL / TSTEINER_INC_MARGIN /
// TSTEINER_INC_CAPF (routing geometry and capacity headroom),
// TSTEINER_INC_CONT_CAPF / TSTEINER_INC_CONT_ROUNDS (contention section),
// TSTEINER_THREADS (pool width).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "flow/flow.hpp"
#include "flow/incremental_signoff.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace tsteiner;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

/// Trees with at least one Steiner point, i.e. movable geometry.
std::vector<int> movable_trees(const SteinerForest& forest) {
  std::vector<int> out;
  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    if (forest.trees[t].num_steiner_nodes() > 0) out.push_back(static_cast<int>(t));
  }
  return out;
}

/// Move every Steiner point of one tree; returns the tree's net.
int nudge_tree(SteinerForest& forest, int t, double dx, double dy) {
  SteinerTree& tree = forest.trees[static_cast<std::size_t>(t)];
  for (SteinerNode& n : tree.nodes) {
    if (n.is_steiner()) {
      n.pos.x += dx;
      n.pos.y += dy;
    }
  }
  return tree.net;
}

bool bits_eq(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

bool metrics_identical(const SignoffMetrics& a, const SignoffMetrics& b) {
  return bits_eq(a.wns_ns, b.wns_ns) && bits_eq(a.tns_ns, b.tns_ns) &&
         a.num_vios == b.num_vios && bits_eq(a.wirelength_dbu, b.wirelength_dbu) &&
         a.num_vias == b.num_vias && a.num_drvs == b.num_drvs;
}

struct SweepRow {
  double frac = 0.0;            ///< requested share of movable trees
  double net_dirty_frac = 0.0;  ///< mean declared-dirty nets / total nets
  std::size_t dirty_nets = 0;   ///< mean declared-dirty nets per round
  std::size_t rerouted = 0;     ///< mean rerouted connections per round
  long long reused_mazes = 0;   ///< mean cache-served maze searches per round
  long long total_mazes = 0;    ///< mean maze searches per round (reuse denominator)
  double update_s = 0.0;        ///< total incremental wall time
  double full_s = 0.0;          ///< total full-pipeline wall time
  bool identical = true;
};

}  // namespace

int main() {
  const int cells = env_int("TSTEINER_INC_CELLS", 16000);
  const int rounds = std::max(1, env_int("TSTEINER_INC_ROUNDS", 3));

  std::printf("preparing design (%d comb cells) ...\n", cells);
  // The sweep needs the geometry the paper's sign-off has: nets that are
  // local against the die, so that moving a handful of trees perturbs a
  // neighborhood rather than the whole routing field. The generator default
  // of 30% global picks plus high-fanout control nets makes nearly every
  // tree cross the die center — the pathological case for ANY incremental
  // router, where 1% dirty nets legitimately reroute half the design.
  GeneratorParams p;
  p.num_comb_cells = cells;
  p.num_registers = cells / 10;
  p.num_primary_inputs = 8;
  p.num_primary_outputs = 8;
  p.locality_window_frac = 0.02;
  p.global_pick_prob = 0.05;
  p.num_control_sources = 0;
  p.placement_utilization = 0.45;
  p.seed = 21;
  Design design = generate_design(lib(), p);
  place_design(design);
  // Generated dies are compact; at the default 8-DBU gcell the whole design
  // fits in a ~15x15 routing grid where every maze window is the entire die.
  // A finer gcell plus a tighter maze margin restores windows that are small
  // against the die.
  FlowOptions fopts;
  fopts.router.gcell_size = env_int("TSTEINER_INC_GCELL", 2);
  fopts.router.maze_margin = env_int("TSTEINER_INC_MARGIN", 4);
  // The flow default (0.92 x p90 demand) guarantees structural overflow:
  // every round rips thousands of victims and a single moved tree
  // legitimately cascades across the die. Real sign-off designs are
  // routable; headroom above p90 keeps congestion local so the incremental
  // contract (small perturbation -> small honest recompute) is even testable.
  fopts.router.capacity_factor = env_double("TSTEINER_INC_CAPF", 2.0);
  const Flow flow(&design, fopts);  // pins capacities + calibrates the clock
  SteinerForest forest = flow.initial_forest();
  const std::vector<int> cand = movable_trees(forest);
  const std::size_t num_nets = design.nets().size();
  std::printf("%zu nets, %zu movable trees, %d round(s) per fraction\n", num_nets,
              cand.size(), rounds);
  if (cand.empty()) {
    std::printf("no movable trees; nothing to sweep\n");
    return 1;
  }

  IncrementalSignoff inc(&design, flow.options());
  WallTimer anchor_timer;
  inc.full(forest);
  const double anchor_s = anchor_timer.seconds();
  std::printf("anchor full sign-off: %.3fs\n", anchor_s);

  const double fracs[] = {0.01, 0.05, 0.20, 1.00};
  std::vector<SweepRow> rows;
  Rng rng(2026);
  bool all_identical = true;

  for (const double frac : fracs) {
    SweepRow row;
    row.frac = frac;
    const std::size_t k =
        std::min(cand.size(),
                 static_cast<std::size_t>(std::max<long long>(
                     1, std::llround(frac * static_cast<double>(cand.size())))));
    for (int r = 0; r < rounds; ++r) {
      // Refine-sized moves: every probe-cadence step shifts trees by a few DBU.
      std::vector<int> picks = cand;
      rng.shuffle(picks);
      picks.resize(k);
      std::vector<int> dirty;
      dirty.reserve(k);
      for (const int t : picks) {
        double dx = static_cast<double>(rng.uniform_int(-8, 8));
        double dy = static_cast<double>(rng.uniform_int(-8, 8));
        if (dx == 0.0 && dy == 0.0) dx = 3.0;
        dirty.push_back(nudge_tree(forest, t, dx, dy));
      }

      WallTimer tu;
      const IncrementalSignoff::Result& got = inc.update(forest, dirty);
      row.update_s += tu.seconds();
      WallTimer tf;
      const FlowResult ref = flow.run_signoff(forest);
      row.full_s += tf.seconds();

      const bool same = metrics_identical(got.metrics, ref.metrics);
      if (r == 0) {
        std::printf(
            "  [frac %.2f round 0] inc gr %.1f dr %.1f sta %.1f ms | full gr %.1f dr "
            "%.1f sta %.1f ms\n",
            frac, 1e3 * got.runtime.global_route.wall_s,
            1e3 * got.runtime.detailed_route.wall_s, 1e3 * got.runtime.sta.wall_s,
            1e3 * ref.runtime.global_route.wall_s,
            1e3 * ref.runtime.detailed_route.wall_s, 1e3 * ref.runtime.sta.wall_s);
      }
      row.identical = row.identical && same;
      row.dirty_nets += got.num_dirty_nets;
      row.rerouted += got.num_rerouted;
      row.reused_mazes += got.reused_mazes;
      row.total_mazes += got.total_mazes;
      if (!same) {
        std::printf("MISMATCH at frac %.2f round %d: WNS %.9f vs %.9f\n", frac, r,
                    got.metrics.wns_ns, ref.metrics.wns_ns);
      }
    }
    row.dirty_nets /= static_cast<std::size_t>(rounds);
    row.rerouted /= static_cast<std::size_t>(rounds);
    row.reused_mazes /= rounds;
    row.total_mazes /= rounds;
    row.net_dirty_frac =
        static_cast<double>(row.dirty_nets) / static_cast<double>(std::max<std::size_t>(1, num_nets));
    all_identical = all_identical && row.identical;
    const double speedup = row.update_s > 1e-12 ? row.full_s / row.update_s : 0.0;
    std::printf(
        "frac %5.2f: %5zu dirty nets (%.3f of nets), %5zu rerouted, %lld/%lld mazes "
        "reused | update %7.1f ms  full %7.1f ms  speedup %6.2fx  %s\n",
        frac, row.dirty_nets, row.net_dirty_frac, row.rerouted, row.reused_mazes,
        row.total_mazes, 1e3 * row.update_s / rounds, 1e3 * row.full_s / rounds, speedup,
        row.identical ? "bit-identical" : "MISMATCH");
    rows.push_back(row);
  }

  // Contention sweep: the headroom default never enters rip-up-and-reroute,
  // so the sweep above reports reused_mazes as a vacuous 0/0. This section
  // re-runs the design with tight capacities (RRR fires every round) and a
  // *localized* perturbation — one corner tree nudged by one gcell — where
  // victims across the rest of the die keep provably-untouched windows and
  // must be served from the maze cache.
  long long cont_reused = 0;
  long long cont_total = 0;
  bool cont_identical = true;
  const int cont_rounds = std::max(1, env_int("TSTEINER_INC_CONT_ROUNDS", 3));
  {
    FlowOptions copts = fopts;
    copts.router.capacity_factor = env_double("TSTEINER_INC_CONT_CAPF", 1.0);
    Design cdesign = generate_design(lib(), p);
    place_design(cdesign);
    const Flow cflow(&cdesign, copts);
    SteinerForest cforest = cflow.initial_forest();
    const std::vector<int> ccand = movable_trees(cforest);
    IncrementalSignoff cinc(&cdesign, cflow.options());
    cinc.full(cforest);
    // The movable tree nearest the lower-left corner, nudged one gcell per
    // round: the perturbation the refine probe cadence actually produces.
    int corner_tree = ccand.empty() ? -1 : ccand.front();
    double best = 1e300;
    for (const int t : ccand) {
      for (const SteinerNode& n : cforest.trees[static_cast<std::size_t>(t)].nodes) {
        if (n.is_steiner() && n.pos.x + n.pos.y < best) {
          best = n.pos.x + n.pos.y;
          corner_tree = t;
        }
      }
    }
    for (int r = 0; corner_tree >= 0 && r < cont_rounds; ++r) {
      const int net = nudge_tree(cforest, corner_tree, 2.0, 2.0);
      const IncrementalSignoff::Result& got = cinc.update(cforest, {net});
      cont_reused += got.reused_mazes;
      cont_total += got.total_mazes;
      const FlowResult ref = cflow.run_signoff(cforest);
      cont_identical = cont_identical && metrics_identical(got.metrics, ref.metrics);
    }
    cont_reused /= cont_rounds;
    cont_total /= cont_rounds;
    std::printf("contention (capf %.2f, 1 corner tree/round): %lld/%lld mazes reused  %s\n",
                copts.router.capacity_factor, cont_reused, cont_total,
                cont_identical ? "bit-identical" : "MISMATCH");
    if (cont_total > 0 && cont_reused == 0) {
      std::printf("WARNING: RRR ran but no maze was reused — the cache is broken\n");
    }
    all_identical = all_identical && cont_identical;
  }

  // The acceptance target: >=10x per sign-off at <=5% dirty fraction.
  double speedup_at_5pct = 0.0;
  for (const SweepRow& row : rows) {
    if (row.frac <= 0.05 + 1e-9 && row.update_s > 1e-12) {
      speedup_at_5pct = std::max(speedup_at_5pct, row.full_s / row.update_s);
    }
  }
  if (speedup_at_5pct < 10.0) {
    std::printf("WARNING: best speedup at <=5%% dirty is %.2fx, below the 10x target\n",
                speedup_at_5pct);
  }

  FILE* f = std::fopen("BENCH_incremental.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"cells\": %d,\n  \"nets\": %zu,\n  \"movable_trees\": %zu,\n",
                 cells, num_nets, cand.size());
    std::fprintf(f, "  \"rounds_per_fraction\": %d,\n  \"anchor_full_s\": %.4f,\n", rounds,
                 anchor_s);
    std::fprintf(f, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& row = rows[i];
      const double speedup = row.update_s > 1e-12 ? row.full_s / row.update_s : 0.0;
      std::fprintf(f,
                   "    {\"dirty_frac\": %.2f, \"net_dirty_frac\": %.4f, "
                   "\"dirty_nets\": %zu, \"rerouted\": %zu, \"reused_mazes\": %lld, "
                   "\"total_mazes\": %lld, "
                   "\"update_ms\": %.3f, \"full_ms\": %.3f, \"speedup\": %.3f, "
                   "\"bit_identical\": %s}%s\n",
                   row.frac, row.net_dirty_frac, row.dirty_nets, row.rerouted,
                   row.reused_mazes, row.total_mazes, 1e3 * row.update_s / rounds,
                   1e3 * row.full_s / rounds, speedup,
                   row.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"contention\": {\"capacity_factor\": %.2f, \"rounds\": %d, "
                 "\"reused_mazes\": %lld, \"total_mazes\": %lld, \"bit_identical\": %s},\n",
                 env_double("TSTEINER_INC_CONT_CAPF", 1.0), cont_rounds, cont_reused,
                 cont_total, cont_identical ? "true" : "false");
    std::fprintf(f, "  \"speedup_at_5pct\": %.3f,\n", speedup_at_5pct);
    std::fprintf(f, "  \"bit_identical\": %s\n}\n", all_identical ? "true" : "false");
    std::fclose(f);
    std::printf("Wrote BENCH_incremental.json\n");
  }
  return all_identical ? 0 : 1;
}
