// Table IV: runtime breakdown — baseline (GR + DR) vs TSteiner-integrated
// flow (TSteiner + GR + DR) per design, with ratio averages. Paper: total
// 1.32x, GR 1.017x, DR 0.934x under TSteiner.
#include "bench_common.hpp"

#include "droute/detailed_route.hpp"
#include "util/timer.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  SuiteOptions opts = default_suite_options();
  std::printf("== Table IV: runtime breakdown (s) at scale %.2f ==\n\n", opts.scale);
  TrainedSuite suite = build_and_train_suite(opts);

  // Our cost profile inverts the paper's: the DR *surrogate* is nearly free
  // while evaluator inference dominates (the paper ran GPU inference against
  // an hours-long TritonRoute). Wall-clock columns are reported for
  // completeness; the paper's "DR gets faster under TSteiner" effect is
  // visible in the DR repair-work columns (conflict-repair effort units).
  Table t({"Benchmark", "GR", "DRwork", "TSteiner", "GradRec", "GradRep", "GR'", "DRwork'"});
  double r_gr = 0, r_drw = 0, tsteiner_total = 0, base_total_s = 0;
  double record_total = 0, replay_total = 0, util_replay = 0;
  double util_gr = 0, util_sta = 0;
  int counted = 0;
  for (PreparedDesign& pd : suite.designs) {
    const FlowResult base = pd.flow->run_signoff(pd.flow->initial_forest());
    const DetailedRouteResult base_dr =
        detailed_route(*pd.design, pd.flow->initial_forest(), base.gr,
                       pd.flow->options().droute);

    WallTimer refine_timer;
    const RefineOptions ropts = default_refine_options(pd);
    const RefineResult refined =
        refine_steiner_points(*pd.design, pd.flow->initial_forest(), *suite.model, ropts);
    const double tsteiner_s = refine_timer.seconds();
    const FlowResult opt = pd.flow->run_signoff(refined.forest);
    const DetailedRouteResult opt_dr =
        detailed_route(*pd.design, refined.forest, opt.gr, pd.flow->options().droute);

    t.add_row({pd.spec.name, fmt(base.runtime.global_route_s()),
               Table::num(base_dr.repair_work), fmt(tsteiner_s),
               fmt(refined.grad_record.wall_s), fmt(refined.grad_replay.wall_s),
               fmt(opt.runtime.global_route_s()), Table::num(opt_dr.repair_work)});
    record_total += refined.grad_record.wall_s;
    replay_total += refined.grad_replay.wall_s;
    util_replay += refined.grad_replay.utilization();
    util_gr += opt.runtime.global_route.utilization();
    util_sta += opt.runtime.sta.utilization();
    if (base.runtime.global_route_s() > 1e-9) {
      r_gr += ratio(opt.runtime.global_route_s(), base.runtime.global_route_s());
      r_drw += ratio(static_cast<double>(opt_dr.repair_work),
                     static_cast<double>(std::max<long long>(1, base_dr.repair_work)));
      ++counted;
    }
    tsteiner_total += tsteiner_s;
    base_total_s += base.runtime.global_route_s() + base.runtime.detailed_route_s();
  }
  t.print();
  if (counted > 0) {
    const double n = counted;
    std::printf("\nRatio averages (TSteiner flow / baseline): GR %.3f  DR-work %.3f\n",
                r_gr / n, r_drw / n);
    const double n_all = static_cast<double>(suite.designs.size());
    std::printf("Mean pool utilization (effective threads): GR %.2f  STA %.2f  replay %.2f\n",
                util_gr / n_all, util_sta / n_all, util_replay / n_all);
    std::printf("Gradient split: %.2fs one-time program recording, %.2fs in-place replays\n",
                record_total, replay_total);
    std::printf("TSteiner refinement total: %.1fs vs %.1fs of routing — the inverse of the\n"
                "paper's profile (their DR dominates; Total 1.320, GR 1.017, DR 0.934)\n",
                tsteiner_total, base_total_s);
  }
  return 0;
}
