// Extension bench: one-shot TSteiner (the paper's scheme) vs the iterative
// closed-loop variant that fine-tunes the evaluator on each refined
// solution's sign-off labels (future-work direction in the paper's §V).
#include "bench_common.hpp"

#include "flow/iterative.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  const double scale = env_scale(0.25);
  std::printf("== Extension: one-shot vs iterative TSteiner on des (scale %.2f) ==\n\n",
              scale);
  SingleDesignSetup s = prepare_single("des", scale, env_epochs(30), 3);
  const FlowResult base = s.pd.flow->run_signoff(s.pd.flow->initial_forest());
  std::printf("baseline: WNS %.3f TNS %.1f\n\n", base.metrics.wns_ns, base.metrics.tns_ns);

  Table t({"scheme", "signoff WNS", "signoff TNS", "WNS ratio", "TNS ratio", "signoff calls"});

  // One-shot (paper).
  {
    const RefineOptions ropts = default_refine_options(s.pd);
    const RefineResult refined =
        refine_steiner_points(*s.pd.design, s.pd.flow->initial_forest(), *s.model, ropts);
    const FlowResult opt = s.pd.flow->run_signoff(refined.forest);
    t.add_row({"one-shot (paper)", fmt(opt.metrics.wns_ns), fmt(opt.metrics.tns_ns, 1),
               fmt(ratio(opt.metrics.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(opt.metrics.tns_ns, base.metrics.tns_ns), 4), "1"});
  }
  // Iterative closed loop.
  for (const int rounds : {2, 3}) {
    TimingGnn model_copy = *s.model;  // keep the original untouched
    IterativeOptions iopts;
    iopts.rounds = rounds;
    iopts.refine = default_refine_options(s.pd);
    const IterativeResult it = iterative_refine(s.pd, &model_copy, iopts);
    t.add_row({"iterative x" + std::to_string(rounds), fmt(it.best.wns_ns),
               fmt(it.best.tns_ns, 1), fmt(ratio(it.best.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(it.best.tns_ns, base.metrics.tns_ns), 4),
               std::to_string(rounds)});
  }
  t.print();
  std::printf("\nexpected shape: the closed loop at least matches one-shot and keeps "
              "improving while rounds add accurate labels near the iterate\n");
  return 0;
}
