// Fig. 5: sign-off timing metrics ratio comparison — TSteiner vs the
// expected value of random Steiner moves ('ExpV-Random', 10+ trials).
// The paper's point: random moving averages out to ~1.0 while TSteiner
// consistently pushes WNS/TNS/#Vios ratios below 1.
#include "bench_common.hpp"

#include "util/stats.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  SuiteOptions opts = default_suite_options();
  const int random_trials = 10;
  std::printf("== Fig. 5: TSteiner vs expected random move (scale %.2f, %d trials) ==\n\n",
              opts.scale, random_trials);
  TrainedSuite suite = build_and_train_suite(opts);

  std::vector<double> ts_wns, ts_tns, ts_vios;
  std::vector<double> rd_wns, rd_tns, rd_vios;
  Rng rng(31337);

  for (PreparedDesign& pd : suite.designs) {
    const FlowResult base = pd.flow->run_signoff(pd.flow->initial_forest());
    if (base.metrics.wns_ns >= -1e-9) continue;

    const RefineOptions ropts = default_refine_options(pd);
    const RefineResult refined =
        refine_steiner_points(*pd.design, pd.flow->initial_forest(), *suite.model, ropts);
    const FlowResult opt = pd.flow->run_signoff(refined.forest);
    ts_wns.push_back(ratio(opt.metrics.wns_ns, base.metrics.wns_ns));
    ts_tns.push_back(ratio(opt.metrics.tns_ns, base.metrics.tns_ns));
    ts_vios.push_back(ratio(static_cast<double>(opt.metrics.num_vios),
                            static_cast<double>(base.metrics.num_vios)));

    const double dist = 2.0 * static_cast<double>(pd.flow->options().router.gcell_size);
    double w = 0, t = 0, v = 0;
    for (int k = 0; k < random_trials; ++k) {
      Rng child = rng.fork();
      const SteinerForest variant =
          random_disturb(pd.flow->initial_forest(), pd.design->die(), dist, child);
      const FlowResult moved = pd.flow->run_signoff(variant);
      w += ratio(moved.metrics.wns_ns, base.metrics.wns_ns);
      t += ratio(moved.metrics.tns_ns, base.metrics.tns_ns);
      v += ratio(static_cast<double>(moved.metrics.num_vios),
                 static_cast<double>(base.metrics.num_vios));
    }
    rd_wns.push_back(w / random_trials);
    rd_tns.push_back(t / random_trials);
    rd_vios.push_back(v / random_trials);
    std::printf("%-14s  TSteiner: WNS %.3f TNS %.3f Vios %.3f | ExpV-Random: "
                "WNS %.3f TNS %.3f Vios %.3f\n",
                pd.spec.name.c_str(), ts_wns.back(), ts_tns.back(), ts_vios.back(),
                rd_wns.back(), rd_tns.back(), rd_vios.back());
  }

  std::printf("\nAll-design averages (ratio vs baseline, lower is better):\n");
  std::printf("  metric   TSteiner   ExpV-Random\n");
  std::printf("  WNS      %.4f     %.4f\n", mean(ts_wns), mean(rd_wns));
  std::printf("  TNS      %.4f     %.4f\n", mean(ts_tns), mean(rd_tns));
  std::printf("  #Vios    %.4f     %.4f\n", mean(ts_vios), mean(rd_vios));
  std::printf("\npaper's shape: TSteiner ratios clearly < 1 (0.888 WNS / 0.929 TNS), "
              "ExpV-Random ~ 1.0\n");
  return 0;
}
