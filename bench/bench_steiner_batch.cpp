// Batched-construction bench: per-net iterated 1-Steiner vs the batched
// learned path (one padded predictor forward + gain-gated stitch) across
// design sizes whose routable-net counts land near 1k / 5k / 20k.
//
// Per scale it reports construction wall time for the exact per-net path,
// the batched path, and the Prim-Dijkstra baseline; the batched fallback
// rate; and total-wirelength deltas vs both references (the stitch gain
// gate guarantees batched WL <= MST(pins) <= PD WL per net). Two hard
// gates decide the exit code so CI can run this at small scale:
//   1. batched forests at pool widths 1 and 4 must be bit-identical;
//   2. at the smallest scale, both constructions are refined with the same
//      model and signed off through the same Flow — the batched start must
//      not degrade post-refine WNS/TNS beyond a 0.1% noise floor.
//
// Results land in BENCH_steiner_batch.json.
//
// Knobs: TSTEINER_SB_CELLS (comma list, default "900,4500,18000"),
// TSTEINER_SB_REFINE_ITERS (default 20), TSTEINER_THREADS (pool width).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "gnn/model.hpp"
#include "gnn/steiner_predictor.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "steiner/prim_dijkstra.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/refine.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

using namespace tsteiner;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

std::vector<int> env_cells() {
  const char* v = std::getenv("TSTEINER_SB_CELLS");
  std::vector<int> out;
  if (v != nullptr && *v != '\0') {
    std::string s(v);
    std::size_t pos = 0;
    while (pos < s.size()) {
      out.push_back(std::atoi(s.c_str() + pos));
      const std::size_t comma = s.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (out.empty()) out = {900, 4500, 18000};
  return out;
}

Design make_design(int comb) {
  GeneratorParams p;
  p.num_comb_cells = comb;
  p.num_registers = comb / 10;
  p.num_primary_inputs = 8;
  p.num_primary_outputs = 8;
  p.seed = 5023;
  Design d = generate_design(lib(), p);
  place_design(d);
  return d;
}

bool forests_bit_identical(const SteinerForest& a, const SteinerForest& b) {
  if (a.trees.size() != b.trees.size()) return false;
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    const SteinerTree& x = a.trees[t];
    const SteinerTree& y = b.trees[t];
    if (x.net != y.net || x.nodes.size() != y.nodes.size() ||
        x.edges.size() != y.edges.size()) {
      return false;
    }
    for (std::size_t i = 0; i < x.nodes.size(); ++i) {
      if (std::memcmp(&x.nodes[i].pos.x, &y.nodes[i].pos.x, sizeof(double)) != 0 ||
          std::memcmp(&x.nodes[i].pos.y, &y.nodes[i].pos.y, sizeof(double)) != 0 ||
          x.nodes[i].pin != y.nodes[i].pin) {
        return false;
      }
    }
    for (std::size_t i = 0; i < x.edges.size(); ++i) {
      if (x.edges[i].a != y.edges[i].a || x.edges[i].b != y.edges[i].b) return false;
    }
  }
  return true;
}

struct Row {
  int cells = 0;
  std::size_t nets = 0;
  double exact_s = 0.0;
  double batched_s = 0.0;
  double pd_s = 0.0;
  double wl_exact = 0.0;
  double wl_batched = 0.0;
  double wl_pd = 0.0;
  double fallback_rate = 0.0;
  std::size_t inserted_points = 0;
  bool widths_identical = true;
};

}  // namespace

int main() {
  const std::vector<int> scales = env_cells();
  const int refine_iters = env_int("TSTEINER_SB_REFINE_ITERS", 20);

  // Warm the shared predictor outside the timed regions (one pretrain per
  // build directory; later runs restore it from the weight cache).
  const auto predictor = SteinerPredictor::shared_pretrained();

  std::vector<Row> rows;
  bool all_widths_identical = true;

  for (const int cells : scales) {
    Row row;
    row.cells = cells;
    std::printf("preparing design (%d comb cells) ...\n", cells);
    const Design design = make_design(cells);

    const RsmtOptions rsmt;
    BatchBuildOptions batch;
    batch.fallback = rsmt;

    WallTimer te;
    const SteinerForest exact = build_forest(design, rsmt);
    row.exact_s = te.seconds();

    BatchBuildStats stats;
    WallTimer tb;
    const SteinerForest batched = build_forest_batched(design, *predictor, batch, &stats);
    row.batched_s = tb.seconds();

    WallTimer tp;
    const SteinerForest pd = build_pd_forest(design);
    row.pd_s = tp.seconds();

    row.nets = stats.num_nets;
    row.wl_exact = exact.total_wirelength();
    row.wl_batched = batched.total_wirelength();
    row.wl_pd = pd.total_wirelength();
    row.fallback_rate = stats.num_nets > 0 ? static_cast<double>(stats.num_fallback()) /
                                                 static_cast<double>(stats.num_nets)
                                           : 0.0;
    row.inserted_points = stats.num_inserted_points;

    // Thread-width gate: the batched construction promises bit-identical
    // forests at any pool width.
    set_parallel_threads(1);
    const SteinerForest w1 = build_forest_batched(design, *predictor, batch);
    set_parallel_threads(4);
    const SteinerForest w4 = build_forest_batched(design, *predictor, batch);
    set_parallel_threads(0);
    row.widths_identical = forests_bit_identical(w1, w4) && forests_bit_identical(w1, batched);
    all_widths_identical = all_widths_identical && row.widths_identical;

    const double speedup = row.batched_s > 1e-12 ? row.exact_s / row.batched_s : 0.0;
    std::printf(
        "%6zu nets: exact %8.3fs  batched %7.3fs (%5.1fx)  pd %6.3fs | WL vs exact "
        "%+.2f%%  vs pd %+.2f%% | fallback %4.1f%%  +%zu points  widths %s\n",
        row.nets, row.exact_s, row.batched_s, speedup, row.pd_s,
        1e2 * (row.wl_batched / row.wl_exact - 1.0), 1e2 * (row.wl_batched / row.wl_pd - 1.0),
        1e2 * row.fallback_rate, row.inserted_points,
        row.widths_identical ? "bit-identical" : "DIVERGED");
    rows.push_back(row);
  }

  // Post-refine gate at the smallest scale: refine both constructions with
  // the same (deterministic) model and sign off through the same Flow, whose
  // routing capacities were pinned by the per-net baseline.
  std::printf("post-refine comparison (%d comb cells) ...\n", scales.front());
  Design design = make_design(scales.front());
  FlowOptions fopts;
  fopts.steiner.mode = SteinerBuildMode::kPerNet;
  const Flow flow(&design, fopts);
  const SteinerForest exact = flow.initial_forest();
  BatchBuildOptions batch;
  batch.fallback = flow.options().rsmt;
  const SteinerForest batched = build_forest_batched(design, *predictor, batch);

  const TimingGnn model(GnnConfig{}, lib().num_types());
  RefineOptions ropts;
  ropts.gcell_size = flow.options().router.gcell_size;
  ropts.max_iterations = refine_iters;
  const RefineResult r_exact = refine_steiner_points(design, exact, model, ropts);
  const RefineResult r_batched = refine_steiner_points(design, batched, model, ropts);
  const FlowResult s_exact = flow.run_signoff(r_exact.forest);
  const FlowResult s_batched = flow.run_signoff(r_batched.forest);
  // Noise floor: 0.1% of the clock period.
  const double tol = 1e-3 * design.clock_period();
  const bool refine_ok = s_batched.metrics.wns_ns >= s_exact.metrics.wns_ns - tol &&
                         s_batched.metrics.tns_ns >= s_exact.metrics.tns_ns - tol;
  std::printf("  exact:   post-refine WNS %9.4f ns  TNS %10.3f ns\n",
              s_exact.metrics.wns_ns, s_exact.metrics.tns_ns);
  std::printf("  batched: post-refine WNS %9.4f ns  TNS %10.3f ns  %s\n",
              s_batched.metrics.wns_ns, s_batched.metrics.tns_ns,
              refine_ok ? "(no worse)" : "(WORSE)");

  FILE* f = std::fopen("BENCH_steiner_batch.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      const double speedup = row.batched_s > 1e-12 ? row.exact_s / row.batched_s : 0.0;
      std::fprintf(f,
                   "    {\"cells\": %d, \"nets\": %zu, \"exact_s\": %.4f, "
                   "\"batched_s\": %.4f, \"speedup\": %.2f, \"pd_s\": %.4f, "
                   "\"wl_exact\": %.1f, \"wl_batched\": %.1f, \"wl_pd\": %.1f, "
                   "\"wl_vs_exact_pct\": %.3f, \"wl_vs_pd_pct\": %.3f, "
                   "\"fallback_rate\": %.4f, \"inserted_points\": %zu, "
                   "\"widths_bit_identical\": %s}%s\n",
                   row.cells, row.nets, row.exact_s, row.batched_s, speedup, row.pd_s,
                   row.wl_exact, row.wl_batched, row.wl_pd,
                   1e2 * (row.wl_batched / row.wl_exact - 1.0),
                   1e2 * (row.wl_batched / row.wl_pd - 1.0), row.fallback_rate,
                   row.inserted_points, row.widths_identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"post_refine\": {\"cells\": %d, \"refine_iters\": %d, "
                 "\"exact_wns_ns\": %.6f, \"exact_tns_ns\": %.6f, "
                 "\"batched_wns_ns\": %.6f, \"batched_tns_ns\": %.6f, "
                 "\"no_worse\": %s},\n",
                 scales.front(), refine_iters, s_exact.metrics.wns_ns,
                 s_exact.metrics.tns_ns, s_batched.metrics.wns_ns,
                 s_batched.metrics.tns_ns, refine_ok ? "true" : "false");
    std::fprintf(f, "  \"widths_bit_identical\": %s\n}\n",
                 all_widths_identical ? "true" : "false");
    std::fclose(f);
    std::printf("Wrote BENCH_steiner_batch.json\n");
  }
  return all_widths_identical && refine_ok ? 0 : 1;
}
