// Complementarity study: van Ginneken buffering of the most critical nets
// vs TSteiner Steiner-point refinement vs both. Buffering edits the netlist
// (stronger, costs cells); TSteiner only moves auxiliary points (free).
#include "bench_common.hpp"

#include <set>

#include "opt/buffering.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

namespace {

/// Buffer the K most critical nets of the design in place; returns the
/// number of buffers inserted. The flow must be rebuilt afterwards.
int buffer_critical_nets(Design& design, const SteinerForest& forest,
                         const std::vector<double>& arrival, int top_k) {
  // Rank nets by their worst-sink arrival.
  std::vector<std::pair<double, int>> ranked;
  for (const Net& n : design.nets()) {
    double worst = 0.0;
    for (int s : n.sink_pins) worst = std::max(worst, arrival[static_cast<std::size_t>(s)]);
    ranked.push_back({-worst, n.id});
  }
  std::sort(ranked.begin(), ranked.end());
  int inserted = 0;
  for (int k = 0; k < top_k && k < static_cast<int>(ranked.size()); ++k) {
    const int net = ranked[static_cast<std::size_t>(k)].second;
    const int t = forest.net_to_tree[static_cast<std::size_t>(net)];
    if (t < 0) continue;
    const SteinerTree& tree = forest.trees[static_cast<std::size_t>(t)];
    const BufferingPlan plan = plan_buffering(design, tree);
    if (plan.buffers.empty()) continue;
    inserted += static_cast<int>(apply_buffering(design, plan, tree).size());
  }
  return inserted;
}

}  // namespace

int main() {
  const double scale = env_scale(0.25);
  std::printf("== Extension: buffering vs TSteiner on des (scale %.2f) ==\n\n", scale);
  SingleDesignSetup s = prepare_single("des", scale, env_epochs(30), 3);
  const FlowResult base = s.pd.flow->run_signoff(s.pd.flow->initial_forest());
  std::printf("baseline: WNS %.3f TNS %.1f (%lld cells)\n\n", base.metrics.wns_ns,
              base.metrics.tns_ns, s.pd.design->stats().num_cells);

  Table t({"optimization", "WNS ratio", "TNS ratio", "extra cells"});

  // TSteiner alone.
  SteinerForest refined_forest = s.pd.flow->initial_forest();
  {
    const RefineOptions ropts = default_refine_options(s.pd);
    const RefineResult refined =
        refine_steiner_points(*s.pd.design, s.pd.flow->initial_forest(), *s.model, ropts);
    refined_forest = refined.forest;
    const FlowResult opt = s.pd.flow->run_signoff(refined.forest);
    t.add_row({"TSteiner", fmt(ratio(opt.metrics.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(opt.metrics.tns_ns, base.metrics.tns_ns), 4), "0"});
  }

  // Buffering alone (mutates a copy of the design, so run it last on the
  // shared design; we re-prepare the flow afterwards for the combined row).
  {
    Design& d = *s.pd.design;
    const int buffers =
        buffer_critical_nets(d, s.pd.flow->initial_forest(), base.sta.arrival, 24);
    Flow buffered_flow(&d, s.pd.flow->options());
    const FlowResult buf = buffered_flow.run_signoff(buffered_flow.initial_forest());
    t.add_row({"buffering (24 nets)", fmt(ratio(buf.metrics.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(buf.metrics.tns_ns, base.metrics.tns_ns), 4),
               Table::num(static_cast<long long>(buffers))});

    // Combined: TSteiner on top of the buffered design (fresh model-free
    // geometry pass would need retraining; reuse the evaluator — topology
    // changed, so rebuild the cache via refine's internal path).
    const RefineOptions ropts = default_refine_options(s.pd);
    const RefineResult refined = refine_steiner_points(
        d, buffered_flow.initial_forest(), *s.model, ropts);
    const FlowResult both = buffered_flow.run_signoff(refined.forest);
    t.add_row({"buffering + TSteiner",
               fmt(ratio(both.metrics.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(both.metrics.tns_ns, base.metrics.tns_ns), 4),
               Table::num(static_cast<long long>(buffers))});
  }
  t.print();
  std::printf("\nexpected shape: buffering lands the larger standalone gain (it may edit "
              "the netlist); TSteiner adds on top at zero cell cost\n");
  return 0;
}
