// Discrete topology search interleaved with gradient refinement
// (ROADMAP item 4): gradient-only vs search+gradient at an equal gradient
// budget, both signed off through the same Flow.
//
// The search arm wires the episodic IncrementalSignoff reward and the full
// run_signoff keep-best anchor exactly as the serve layer does. Three hard
// gates decide the exit code so CI can run this at small scale:
//   1. the search arm must be bit-identical at pool widths 1 and 4 and
//      across back-to-back runs (forest bits and model WNS/TNS bits);
//   2. the search arm's sign-off must be no worse than the initial forest's
//      (the anchor's pass-through guarantee, checked end to end);
//   3. with TSTEINER_TOPO_REQUIRE_WIN=1 (default), the search arm must beat
//      the gradient-only arm on sign-off WNS or TNS;
// plus a byte-identity check that non-default topology knobs are inert
// while the enable flag stays off.
//
// Results land in BENCH_topology.json.
//
// Knobs: TSTEINER_TOPO_CELLS (default 260), TSTEINER_TOPO_ITERS (gradient
// iterations per round, default 12), TSTEINER_TOPO_ROUNDS (default 3),
// TSTEINER_TOPO_EPOCHS (evaluator training epochs, default 40),
// TSTEINER_TOPO_REQUIRE_WIN (default 1), TSTEINER_THREADS (pool width).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "flow/experiment.hpp"
#include "flow/incremental_signoff.hpp"
#include "gnn/trainer.hpp"
#include "tsteiner/random_move.hpp"
#include "tsteiner/refine.hpp"
#include "util/parallel.hpp"

using namespace tsteiner;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

bool forests_bit_identical(const SteinerForest& a, const SteinerForest& b) {
  if (a.trees.size() != b.trees.size()) return false;
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    const SteinerTree& x = a.trees[t];
    const SteinerTree& y = b.trees[t];
    if (x.net != y.net || x.nodes.size() != y.nodes.size() ||
        x.edges.size() != y.edges.size()) {
      return false;
    }
    for (std::size_t i = 0; i < x.nodes.size(); ++i) {
      if (std::memcmp(&x.nodes[i].pos.x, &y.nodes[i].pos.x, sizeof(double)) != 0 ||
          std::memcmp(&x.nodes[i].pos.y, &y.nodes[i].pos.y, sizeof(double)) != 0 ||
          x.nodes[i].pin != y.nodes[i].pin) {
        return false;
      }
    }
    for (std::size_t i = 0; i < x.edges.size(); ++i) {
      if (x.edges[i].a != y.edges[i].a || x.edges[i].b != y.edges[i].b) return false;
    }
  }
  return true;
}

bool bits_eq(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

}  // namespace

int main() {
  const int cells = env_int("TSTEINER_TOPO_CELLS", 260);
  const int iters = env_int("TSTEINER_TOPO_ITERS", 12);
  const int rounds = env_int("TSTEINER_TOPO_ROUNDS", 3);
  const int epochs = env_int("TSTEINER_TOPO_EPOCHS", 40);
  const bool require_win = env_int("TSTEINER_TOPO_REQUIRE_WIN", 1) != 0;

  // One seed-scale design plus a per-design trained evaluator (the
  // single-design variant of the suite pipeline).
  const CellLibrary lib = CellLibrary::make_default();
  BenchmarkSpec spec;
  spec.name = "topo_search";
  spec.target_cells = cells;
  spec.endpoints = std::max(16, cells / 4);
  spec.is_training = true;
  spec.seed = 4242;
  std::printf("preparing design (%d comb cells target) ...\n", cells);
  const PreparedDesign pd = prepare_design(lib, spec, 1.0);
  const Flow& flow = *pd.flow;
  const SteinerForest initial = flow.initial_forest();

  std::vector<TrainingSample> samples;
  samples.push_back(make_training_sample(pd, initial));
  Rng rng(77);
  const double dist = 2.0 * static_cast<double>(flow.options().router.gcell_size);
  for (int k = 0; k < 3; ++k) {
    Rng child = rng.fork();
    samples.push_back(make_training_sample(
        pd, random_disturb(initial, pd.design->die(), dist, child)));
  }
  TimingGnn model(GnnConfig{}, lib.num_types());
  TrainOptions topt;
  topt.epochs = epochs;
  topt.lr = 1e-3;
  Trainer trainer(&model, topt);
  trainer.fit(samples);

  const int budget = rounds * iters;
  RefineOptions gradient_only;
  gradient_only.gcell_size = flow.options().router.gcell_size;
  gradient_only.max_iterations = budget;

  const auto make_search_opts = [&](IncrementalSignoff& episodic) {
    RefineOptions o = gradient_only;
    o.topology.enabled = true;
    o.topology.rounds = rounds;
    o.topology.gradient_iterations = iters;
    o.topology.episodic_signoff =
        [&episodic](const SteinerForest& forest,
                    const std::vector<int>& dirty) -> SignoffProbeResult {
      const IncrementalSignoff::Result& r = episodic.update(forest, dirty);
      return {r.metrics.wns_ns, r.metrics.tns_ns, r.incremental};
    };
    o.topology.full_signoff = [&flow](const SteinerForest& forest) -> SignoffProbeResult {
      const FlowResult r = flow.run_signoff(forest);
      return {r.metrics.wns_ns, r.metrics.tns_ns, false};
    };
    return o;
  };

  std::printf("gradient-only arm (%d iterations) ...\n", budget);
  const RefineResult grad = refine_steiner_points(*pd.design, initial, model, gradient_only);

  std::printf("search+gradient arm (%d rounds x %d iterations) ...\n", rounds, iters);
  IncrementalSignoff episodic(pd.design.get(), flow.options());
  const RefineResult search =
      refine_steiner_points(*pd.design, initial, model, make_search_opts(episodic));
  int edits_applied = 0, edits_rejected = 0, nets_searched = 0;
  for (const obs::RefineIterationRecord& rec : search.iteration_log) {
    if (!rec.topology_round) continue;
    edits_applied += rec.search_edits_applied;
    edits_rejected += rec.search_edits_rejected;
    nets_searched += rec.search_nets;
  }
  std::printf("  search: %d nets searched, %d edits applied, %d rejected\n", nets_searched,
              edits_applied, edits_rejected);

  // Gate 1: width and rerun bit-identity of the search arm.
  set_parallel_threads(1);
  IncrementalSignoff ep1(pd.design.get(), flow.options());
  const RefineResult w1 = refine_steiner_points(*pd.design, initial, model, make_search_opts(ep1));
  set_parallel_threads(4);
  IncrementalSignoff ep4(pd.design.get(), flow.options());
  const RefineResult w4 = refine_steiner_points(*pd.design, initial, model, make_search_opts(ep4));
  set_parallel_threads(0);
  const bool widths_identical = forests_bit_identical(w1.forest, w4.forest) &&
                                forests_bit_identical(w1.forest, search.forest) &&
                                bits_eq(w1.best_wns, w4.best_wns) &&
                                bits_eq(w1.best_tns, w4.best_tns) &&
                                bits_eq(w1.best_wns, search.best_wns);

  // Off-knob byte-identity: non-default topology knobs with the enable flag
  // off must leave the classic loop untouched.
  RefineOptions off = gradient_only;
  off.topology.rounds = 9;
  off.topology.rollouts = 5;
  const RefineResult off_run = refine_steiner_points(*pd.design, initial, model, off);
  const bool off_identical = forests_bit_identical(off_run.forest, grad.forest) &&
                             bits_eq(off_run.best_wns, grad.best_wns) &&
                             bits_eq(off_run.best_tns, grad.best_tns);

  const FlowResult s_init = flow.run_signoff(initial);
  const FlowResult s_grad = flow.run_signoff(grad.forest);
  const FlowResult s_search = flow.run_signoff(search.forest);

  // Gate 2: no worse than the initial forest (anchor pass-through).
  const double tol = 1e-9;
  const bool no_worse = s_search.metrics.wns_ns >= s_init.metrics.wns_ns - tol &&
                        s_search.metrics.tns_ns >= s_init.metrics.tns_ns - tol;
  // Gate 3: beats gradient-only on WNS or TNS.
  const bool beats = s_search.metrics.wns_ns > s_grad.metrics.wns_ns + tol ||
                     s_search.metrics.tns_ns > s_grad.metrics.tns_ns + tol;

  std::printf("  initial:         WNS %9.4f ns  TNS %10.3f ns\n", s_init.metrics.wns_ns,
              s_init.metrics.tns_ns);
  std::printf("  gradient-only:   WNS %9.4f ns  TNS %10.3f ns\n", s_grad.metrics.wns_ns,
              s_grad.metrics.tns_ns);
  std::printf("  search+gradient: WNS %9.4f ns  TNS %10.3f ns  %s%s\n",
              s_search.metrics.wns_ns, s_search.metrics.tns_ns,
              no_worse ? "(no worse than initial) " : "(WORSE THAN INITIAL) ",
              beats ? "(beats gradient-only)" : "(no win vs gradient-only)");
  std::printf("  widths 1/4: %s   off-knob byte-identity: %s\n",
              widths_identical ? "bit-identical" : "DIVERGED",
              off_identical ? "ok" : "BROKEN");

  FILE* f = std::fopen("BENCH_topology.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"cells\": %d, \"rounds\": %d, \"iters_per_round\": %d,\n"
                 "  \"init_wns_ns\": %.6f, \"init_tns_ns\": %.6f,\n"
                 "  \"gradient_only_wns_ns\": %.6f, \"gradient_only_tns_ns\": %.6f,\n"
                 "  \"search_wns_ns\": %.6f, \"search_tns_ns\": %.6f,\n"
                 "  \"beats_gradient_only\": %s,\n"
                 "  \"no_worse_than_initial\": %s,\n"
                 "  \"widths_bit_identical\": %s,\n"
                 "  \"off_knob_byte_identical\": %s\n"
                 "}\n",
                 cells, rounds, iters, s_init.metrics.wns_ns, s_init.metrics.tns_ns,
                 s_grad.metrics.wns_ns, s_grad.metrics.tns_ns, s_search.metrics.wns_ns,
                 s_search.metrics.tns_ns, beats ? "true" : "false",
                 no_worse ? "true" : "false", widths_identical ? "true" : "false",
                 off_identical ? "true" : "false");
    std::fclose(f);
    std::printf("Wrote BENCH_topology.json\n");
  }

  const bool ok = widths_identical && off_identical && no_worse && (!require_win || beats);
  return ok ? 0 : 1;
}
