// Shared setup for the table/figure bench binaries.
//
// Every bench is a standalone executable that regenerates one table or
// figure of the paper. Suite-wide knobs come from the environment:
//   TSTEINER_SCALE   design-size multiplier vs Table I   (default 0.06)
//   TSTEINER_EPOCHS  evaluator training epochs           (default 24)
//   TSTEINER_LOG     0..3 verbosity
// Absolute numbers differ from the paper (the substrate is a simulator, not
// Innovus + SkyWater 130nm); the *shape* of each table is the target.
#pragma once

#include <cstdio>
#include <string>

#include "flow/experiment.hpp"
#include "tsteiner/random_move.hpp"
#include "tsteiner/refine.hpp"
#include "util/table.hpp"

namespace tsteiner::bench {

inline SuiteOptions default_suite_options() {
  SuiteOptions opts;
  opts.scale = env_scale(0.12);
  opts.perturb_per_design = 3;
  opts.train.epochs = env_epochs(40);
  opts.train.lr = 1e-3;
  return opts;
}

inline RefineOptions default_refine_options(const PreparedDesign& pd) {
  RefineOptions r;
  r.gcell_size = pd.flow->options().router.gcell_size;
  r.max_iterations = 60;
  return r;
}

/// Single-design setup used by the ablation benches: prepares one benchmark
/// and trains an evaluator on sign-off labels of that design only.
struct SingleDesignSetup {
  std::unique_ptr<CellLibrary> lib;
  PreparedDesign pd;
  std::unique_ptr<TimingGnn> model;
  std::vector<TrainingSample> samples;
};

inline SingleDesignSetup prepare_single(const std::string& name, double scale, int epochs,
                                        int perturbs, const GnnConfig& gnn = {}) {
  SingleDesignSetup s;
  s.lib = std::make_unique<CellLibrary>(CellLibrary::make_default());
  BenchmarkSpec spec;
  for (const BenchmarkSpec& b : benchmark_suite()) {
    if (b.name == name) spec = b;
  }
  s.pd = prepare_design(*s.lib, spec, scale);
  Rng rng(77);
  s.samples.push_back(make_training_sample(s.pd, s.pd.flow->initial_forest()));
  const double dist = 2.0 * static_cast<double>(s.pd.flow->options().router.gcell_size);
  for (int k = 0; k < perturbs; ++k) {
    Rng child = rng.fork();
    s.samples.push_back(make_training_sample(
        s.pd, random_disturb(s.pd.flow->initial_forest(), s.pd.design->die(), dist, child)));
  }
  s.model = std::make_unique<TimingGnn>(gnn, s.lib->num_types());
  TrainOptions topt;
  topt.epochs = epochs;
  topt.lr = 1e-3;
  Trainer trainer(s.model.get(), topt);
  trainer.fit(s.samples);
  return s;
}

inline std::string fmt(double v, int prec = 3) { return Table::num(v, prec); }

/// Guarded improvement ratio `after / before` (1.0 when before ~ 0).
inline double ratio(double after, double before) {
  if (std::abs(before) < 1e-12) return 1.0;
  return after / before;
}

}  // namespace tsteiner::bench
