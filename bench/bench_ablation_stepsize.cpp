// Ablation: Adaptive_Theta (Eq. 8-9) vs fixed stepsizes, plus the
// memoryless SO update (Eq. 7) vs classic Adam moments.
#include "bench_common.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  const double scale = env_scale(0.25);
  std::printf("== Ablation: stepsize scheme on des (scale %.2f) ==\n\n", scale);
  SingleDesignSetup s = prepare_single("des", scale, env_epochs(30), 3);
  const FlowResult base = s.pd.flow->run_signoff(s.pd.flow->initial_forest());
  std::printf("baseline: WNS %.3f TNS %.1f\n\n", base.metrics.wns_ns, base.metrics.tns_ns);

  Table t({"scheme", "theta", "iters", "WNS ratio", "TNS ratio"});
  auto run = [&](const std::string& name, const RefineOptions& ropts) {
    const RefineResult refined =
        refine_steiner_points(*s.pd.design, s.pd.flow->initial_forest(), *s.model, ropts);
    const FlowResult opt = s.pd.flow->run_signoff(refined.forest);
    t.add_row({name, fmt(refined.theta, 4),
               Table::num(static_cast<long long>(refined.iterations)),
               fmt(ratio(opt.metrics.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(opt.metrics.tns_ns, base.metrics.tns_ns), 4)});
  };

  {
    RefineOptions r = default_refine_options(s.pd);
    run("adaptive (paper)", r);
  }
  for (const double theta : {0.05, 0.5, 5.0}) {
    RefineOptions r = default_refine_options(s.pd);
    r.use_adaptive_theta = false;
    r.fixed_theta = theta;
    run("fixed " + Table::num(theta, 2), r);
  }
  {
    RefineOptions r = default_refine_options(s.pd);
    r.so.with_momentum = true;
    run("adaptive + Adam moments", r);
  }
  t.print();
  std::printf("\nexpected shape: adaptive theta performs on par with the best "
              "hand-tuned fixed stepsize without per-design tuning\n");
  return 0;
}
