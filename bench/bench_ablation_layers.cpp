// Substrate ablation: metal-layer assignment policies (paper related work
// [6] CATALYST, [7] TILA). Single-layer RC vs wirelength-driven vs
// timing-driven assignment of the same routed solution.
#include "bench_common.hpp"

#include "route/layer_assign.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  const double scale = env_scale(0.25);
  std::printf("== Ablation: layer assignment on des (scale %.2f) ==\n\n", scale);
  const CellLibrary lib = CellLibrary::make_default();
  BenchmarkSpec spec;
  for (const BenchmarkSpec& b : benchmark_suite()) {
    if (b.name == "des") spec = b;
  }
  const PreparedDesign pd = prepare_design(lib, spec, scale);
  const SteinerForest& forest = pd.flow->initial_forest();
  const FlowResult fr = pd.flow->run_signoff(forest);

  Table t({"policy", "WNS (ns)", "TNS (ns)", "#Vios", "layer vias"});
  const StaResult base = run_sta(*pd.design, forest, &fr.gr);
  t.add_row({"single layer", fmt(base.wns), fmt(base.tns, 1), Table::num(base.num_violations),
             "0"});

  const LayerAssignment wl = assign_layers(forest, fr.gr, LayerPolicy::kWirelength);
  const StaResult wl_sta = run_sta(*pd.design, forest, &fr.gr, {}, &wl);
  t.add_row({"WL-driven", fmt(wl_sta.wns), fmt(wl_sta.tns, 1),
             Table::num(wl_sta.num_violations), Table::num(wl.num_layer_vias)});

  const auto crit = connection_criticality(*pd.design, forest, fr.gr, base.arrival);
  const LayerAssignment td =
      assign_layers(forest, fr.gr, LayerPolicy::kTimingDriven, &crit);
  const StaResult td_sta = run_sta(*pd.design, forest, &fr.gr, {}, &td);
  t.add_row({"timing-driven", fmt(td_sta.wns), fmt(td_sta.tns, 1),
             Table::num(td_sta.num_violations), Table::num(td.num_layer_vias)});
  t.print();
  std::printf("\nexpected shape: both assignments improve timing over single-layer RC; "
              "the timing-driven policy wins WNS at equal via cost ([6], [7])\n");
  return 0;
}
