// Table I: benchmark statistics — cell nodes, Steiner nodes, net edges,
// cell edges and timing endpoints per design, plus train/test totals.
#include "bench_common.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  const double scale = env_scale(0.12);
  std::printf("== Table I: benchmark statistics (scale %.2f of the paper's sizes) ==\n\n",
              scale);
  const CellLibrary lib = CellLibrary::make_default();

  Table t({"Benchmark", "split", "# Cell", "# Steiner", "# NetE", "# CellE", "# Endpoints"});
  DesignStats train_total{}, test_total{};
  long long train_steiner = 0, test_steiner = 0;
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    const PreparedDesign pd = prepare_design(lib, spec, scale);
    const DesignStats s = pd.design->stats();
    const long long steiner = pd.flow->initial_forest().num_steiner_nodes();
    t.add_row({spec.name, spec.is_training ? "train" : "test", Table::num(s.num_cells),
               Table::num(steiner), Table::num(s.num_net_edges), Table::num(s.num_cell_edges),
               Table::num(s.num_endpoints)});
    DesignStats& agg = spec.is_training ? train_total : test_total;
    agg.num_cells += s.num_cells;
    agg.num_net_edges += s.num_net_edges;
    agg.num_cell_edges += s.num_cell_edges;
    agg.num_endpoints += s.num_endpoints;
    (spec.is_training ? train_steiner : test_steiner) += steiner;
  }
  t.add_row({"Total Train", "", Table::num(train_total.num_cells), Table::num(train_steiner),
             Table::num(train_total.num_net_edges), Table::num(train_total.num_cell_edges),
             Table::num(train_total.num_endpoints)});
  t.add_row({"Total Test", "", Table::num(test_total.num_cells), Table::num(test_steiner),
             Table::num(test_total.num_net_edges), Table::num(test_total.num_cell_edges),
             Table::num(test_total.num_endpoints)});
  t.print();
  std::printf("\npaper (scale 1.00): Total Train 89532 cells / 28280 Steiner; "
              "Total Test 74206 cells / 32494 Steiner\n");
  return 0;
}
