// Retained-program replay bench: runs the identical deterministic
// refinement-shaped loop twice — once recording a fresh tape for every
// evaluation (the pre-retained behaviour) and once replaying one recorded
// TapeProgram in place — and checks that every per-iteration penalty,
// WNS/TNS, the final coordinates, and the sign-off STA metrics of the
// resulting forests are bit-identical.
//
// The loop mirrors src/tsteiner/refine.cpp: each iteration takes a gradient
// at the coordinates the previous keep-best evaluation just scored, steps
// along the normalized gradient, and evaluates the new coordinates. That
// ordering is what the retained program exploits — the gradient call's
// forward pass is memoized from the evaluation (only the lambda leaves
// changed), so its marginal cost is the pruned backward replay. The
// headline `grad_eval_speedup` compares exactly that per-iteration gradient
// evaluation against recording a fresh tape for it; `iteration_speedup`
// compares the full evaluate+gradient iteration. Results land in
// BENCH_replay.json; the process exits nonzero on any divergence so CI can
// gate on it at tiny scale and both thread widths.
//
// Knobs: TSTEINER_REPLAY_CELLS (default 1200), TSTEINER_REPLAY_ITERS
// (default 30), TSTEINER_THREADS (pool width).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "flow/flow.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/gradient.hpp"
#include "util/timer.hpp"

using namespace tsteiner;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Prepared {
  Design design;
  SteinerForest forest;
  std::shared_ptr<const GraphCache> cache;
};

Prepared prepare(int comb) {
  GeneratorParams p;
  p.num_comb_cells = comb;
  p.num_registers = comb / 10;
  p.num_primary_inputs = 8;
  p.num_primary_outputs = 8;
  p.seed = 12;
  Prepared out{generate_design(lib(), p), {}, nullptr};
  place_design(out.design);
  out.forest = build_forest(out.design);
  const StaResult sta = run_sta(out.design, out.forest, nullptr);
  out.design.set_clock_period(0.6 * sta.max_arrival);
  out.cache = build_graph_cache(out.design, out.forest);
  return out;
}

using EvalFn = std::function<GradientResult(const std::vector<double>&,
                                            const std::vector<double>&,
                                            const PenaltyWeights&)>;

struct LoopResult {
  std::vector<double> eval_penalties, eval_wns, eval_tns;  ///< keep-best evals
  std::vector<double> grad_penalties;                      ///< gradient calls
  std::vector<double> xs, ys;          ///< final coordinates
  std::vector<double> best_xs, best_ys;  ///< keep-best coordinates
  std::vector<double> grad_call_s;  ///< wall time of each gradient evaluation
  double grad_s = 0.0;  ///< wall time inside the gradient evaluations only
  double eval_s = 0.0;  ///< wall time inside the keep-best evaluations only
};

/// The shared deterministic loop body: identical coordinate updates, lambda
/// schedule, and call ordering regardless of which evaluation path backs it,
/// so any bit difference in the traces comes from the path itself.
LoopResult run_loop(const Prepared& p, int iters, const EvalFn& eval_fn,
                    const EvalFn& grad_fn) {
  LoopResult out;
  out.xs = p.forest.gather_x();
  out.ys = p.forest.gather_y();
  PenaltyWeights w;
  const double step = 4.0;  // DBU per iteration along the normalized gradient
  // Initial evaluation, as the refinement loop performs before iterating.
  {
    WallTimer t;
    const GradientResult cur = eval_fn(out.xs, out.ys, w);
    out.eval_s += t.seconds();
    out.eval_penalties.push_back(cur.penalty);
    out.eval_wns.push_back(cur.eval_wns_ns);
    out.eval_tns.push_back(cur.eval_tns_ns);
    out.best_xs = out.xs;
    out.best_ys = out.ys;
  }
  double best_wns = -1e30;
  for (int it = 0; it < iters; ++it) {
    if (it >= 5) {
      w.lambda_w *= 1.01;
      w.lambda_t *= 1.01;
    }
    // Marginal gradient at the coordinates the previous evaluation scored:
    // the retained path's forward pass is memoized here (lambda-only change).
    WallTimer tg;
    const GradientResult g = grad_fn(out.xs, out.ys, w);
    out.grad_call_s.push_back(tg.seconds());
    out.grad_s += out.grad_call_s.back();
    out.grad_penalties.push_back(g.penalty);
    double norm = 0.0;
    for (double v : g.grad_x) norm += v * v;
    for (double v : g.grad_y) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < 1e-12) break;
    for (std::size_t i = 0; i < out.xs.size(); ++i) {
      out.xs[i] -= step * g.grad_x[i] / norm;
      out.ys[i] -= step * g.grad_y[i] / norm;
    }
    WallTimer te;
    const GradientResult cur = eval_fn(out.xs, out.ys, w);
    out.eval_s += te.seconds();
    out.eval_penalties.push_back(cur.penalty);
    out.eval_wns.push_back(cur.eval_wns_ns);
    out.eval_tns.push_back(cur.eval_tns_ns);
    if (cur.eval_wns_ns > best_wns) {  // keep-best by model-evaluated WNS
      best_wns = cur.eval_wns_ns;
      out.best_xs = out.xs;
      out.best_ys = out.ys;
    }
  }
  return out;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

int main() {
  const int cells = env_int("TSTEINER_REPLAY_CELLS", 1200);
  const int iters = env_int("TSTEINER_REPLAY_ITERS", 30);
  std::printf("preparing design (%d comb cells) ...\n", cells);
  const Prepared p = prepare(cells);
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  const auto xs0 = p.forest.gather_x();
  const auto ys0 = p.forest.gather_y();
  const PenaltyWeights w0;
  std::printf("%zu movable Steiner coordinates, %d iterations\n", xs0.size(), iters);

  // --- fresh-tape path: re-record the graph for every evaluation --------
  const LoopResult fresh = run_loop(
      p, iters,
      [&](const auto& xs, const auto& ys, const PenaltyWeights& w) {
        return evaluate_timing(model, *p.cache, p.design, xs, ys, w);
      },
      [&](const auto& xs, const auto& ys, const PenaltyWeights& w) {
        return compute_timing_gradients(model, *p.cache, p.design, xs, ys, w);
      });

  // --- retained path: record once, replay in place ----------------------
  WallTimer record_timer;
  GradientEvaluator evaluator(model, *p.cache, p.design, xs0, ys0, w0);
  const double record_s = record_timer.seconds();
  const std::uint64_t alloc_cold = evaluator.program().allocation_count();
  const Tape::Stats st = evaluator.program().stats();
  std::printf("program: %zu nodes, %zu value doubles, %zu grad doubles\n", st.num_nodes,
              st.value_doubles, st.grad_doubles);
  std::uint64_t alloc_after_first = 0;
  int grad_calls = 0;
  const LoopResult replay = run_loop(
      p, iters,
      [&](const auto& xs, const auto& ys, const PenaltyWeights& w) {
        return evaluator.evaluate(xs, ys, w);
      },
      [&](const auto& xs, const auto& ys, const PenaltyWeights& w) {
        GradientResult g = evaluator.gradients(xs, ys, w);
        // The gradient arena materializes on the first backward replay;
        // every later replay must be allocation-free.
        if (++grad_calls == 1) alloc_after_first = evaluator.program().allocation_count();
        return g;
      });
  const std::uint64_t alloc_warm_delta =
      evaluator.program().allocation_count() - alloc_after_first;

  // --- bit-identity: traces, final coordinates, sign-off metrics --------
  bool identical = bits_equal(fresh.eval_penalties, replay.eval_penalties) &&
                   bits_equal(fresh.eval_wns, replay.eval_wns) &&
                   bits_equal(fresh.eval_tns, replay.eval_tns) &&
                   bits_equal(fresh.grad_penalties, replay.grad_penalties) &&
                   bits_equal(fresh.xs, replay.xs) && bits_equal(fresh.ys, replay.ys) &&
                   bits_equal(fresh.best_xs, replay.best_xs) &&
                   bits_equal(fresh.best_ys, replay.best_ys);
  SteinerForest ff = p.forest, fr = p.forest;
  ff.scatter_xy(fresh.best_xs, fresh.best_ys);
  fr.scatter_xy(replay.best_xs, replay.best_ys);
  const StaResult sta_fresh = run_sta(p.design, ff, nullptr);
  const StaResult sta_replay = run_sta(p.design, fr, nullptr);
  identical = identical &&
              std::memcmp(&sta_fresh.wns, &sta_replay.wns, sizeof(double)) == 0 &&
              std::memcmp(&sta_fresh.tns, &sta_replay.tns, sizeof(double)) == 0;

  // Steady-state per-iteration gradient cost: the first gradient call is
  // excluded from both paths' means — for the retained program it
  // materializes the whole gradient arena (a one-time allocation +
  // first-touch cost, asserted zero afterwards via alloc_warm_delta), and
  // excluding it symmetrically keeps the comparison fair.
  const auto steady_mean = [](const std::vector<double>& calls) {
    if (calls.size() < 2) return calls.empty() ? 0.0 : calls[0];
    double s = 0.0;
    for (std::size_t i = 1; i < calls.size(); ++i) s += calls[i];
    return s / static_cast<double>(calls.size() - 1);
  };
  const int n = static_cast<int>(fresh.grad_penalties.size());
  const double fresh_grad_iter = steady_mean(fresh.grad_call_s);
  const double replay_grad_iter = steady_mean(replay.grad_call_s);
  const double replay_warmup_s = replay.grad_call_s.empty() ? 0.0 : replay.grad_call_s[0];
  const double grad_speedup =
      replay_grad_iter > 1e-12 ? fresh_grad_iter / replay_grad_iter : 0.0;
  const double fresh_iter_s = fresh.grad_s + fresh.eval_s;
  const double replay_iter_s = replay.grad_s + replay.eval_s;
  const double iter_speedup = replay_iter_s > 1e-12 ? fresh_iter_s / replay_iter_s : 0.0;
  std::printf("record once: %.3fs  (alloc cold %llu)\n", record_s,
              static_cast<unsigned long long>(alloc_cold));
  std::printf("fresh : grad %.3fs (%.1f ms/iter)  eval %.3fs\n", fresh.grad_s,
              1e3 * fresh_grad_iter, fresh.eval_s);
  std::printf(
      "replay: grad %.3fs (%.1f ms/iter steady, %.1f ms warmup)  eval %.3fs  "
      "(alloc warm delta %llu)\n",
      replay.grad_s, 1e3 * replay_grad_iter, 1e3 * replay_warmup_s, replay.eval_s,
      static_cast<unsigned long long>(alloc_warm_delta));
  std::printf("grad eval speedup %.2fx, iteration speedup %.2fx, bit_identical %s\n",
              grad_speedup, iter_speedup, identical ? "yes" : "NO");
  std::printf("sign-off WNS %.4f / TNS %.4f ns\n", sta_replay.wns, sta_replay.tns);
  if (grad_speedup < 5.0) {
    std::printf("WARNING: per-iteration gradient speedup %.2fx below the 5x target\n",
                grad_speedup);
  }

  FILE* f = std::fopen("BENCH_replay.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"cells\": %d,\n  \"iterations\": %d,\n  \"movable\": %zu,\n",
                 cells, n, xs0.size());
    std::fprintf(f, "  \"record_s\": %.4f,\n", record_s);
    std::fprintf(f, "  \"fresh_grad_s\": %.4f,\n  \"replay_grad_s\": %.4f,\n", fresh.grad_s,
                 replay.grad_s);
    std::fprintf(f, "  \"fresh_eval_s\": %.4f,\n  \"replay_eval_s\": %.4f,\n", fresh.eval_s,
                 replay.eval_s);
    std::fprintf(f, "  \"fresh_grad_ms_per_iter\": %.3f,\n", 1e3 * fresh_grad_iter);
    std::fprintf(f, "  \"replay_grad_ms_per_iter\": %.3f,\n", 1e3 * replay_grad_iter);
    std::fprintf(f, "  \"replay_grad_warmup_ms\": %.3f,\n", 1e3 * replay_warmup_s);
    std::fprintf(f, "  \"grad_eval_speedup\": %.3f,\n  \"iteration_speedup\": %.3f,\n",
                 grad_speedup, iter_speedup);
    std::fprintf(f, "  \"alloc_cold\": %llu,\n  \"alloc_warm_delta\": %llu,\n",
                 static_cast<unsigned long long>(alloc_cold),
                 static_cast<unsigned long long>(alloc_warm_delta));
    std::fprintf(f, "  \"signoff_wns_ns\": %.6f,\n  \"signoff_tns_ns\": %.6f,\n",
                 sta_replay.wns, sta_replay.tns);
    std::fprintf(f, "  \"bit_identical\": %s\n}\n", identical ? "true" : "false");
    std::fclose(f);
    std::printf("Wrote BENCH_replay.json\n");
  }
  return identical ? 0 : 1;
}
