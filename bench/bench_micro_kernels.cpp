// Micro-benchmarks (google-benchmark) of the computational kernels under
// TSteiner: RSMT construction, tape forward/backward (fresh recording vs
// retained-program replay), golden STA, and global routing throughput.
#include <benchmark/benchmark.h>

#include "flow/flow.hpp"
#include "gnn/model.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/gradient.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_star(int pins, Rng& rng) {
  Design d("bench", &lib());
  d.set_die({{0, 0}, {400, 400}});
  const int drv = d.add_cell(lib().find("BUF_X1"));
  d.cell(drv).pos = {200, 200};
  const int net = d.add_net(d.cell(drv).output_pin);
  for (int i = 0; i < pins; ++i) {
    const int c = d.add_cell(lib().find("INV_X1"));
    d.cell(c).pos = {rng.uniform_int(0, 400), rng.uniform_int(0, 400)};
    d.connect_sink(net, d.cell(c).input_pins[0]);
  }
  return d;
}

void BM_RsmtConstruction(benchmark::State& state) {
  Rng rng(1);
  Design d = make_star(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_rsmt(d, 0));
  }
}
BENCHMARK(BM_RsmtConstruction)->Arg(3)->Arg(6)->Arg(10)->Arg(20)->Arg(40);

struct Prepared {
  Design design;
  SteinerForest forest;
  std::shared_ptr<const GraphCache> cache;
};

Prepared prepare(int comb) {
  GeneratorParams p;
  p.num_comb_cells = comb;
  p.num_registers = comb / 10;
  p.num_primary_inputs = 8;
  p.num_primary_outputs = 8;
  p.seed = 12;
  Prepared out{generate_design(lib(), p), {}, nullptr};
  place_design(out.design);
  out.forest = build_forest(out.design);
  out.design.set_clock_period(1.0);
  out.cache = build_graph_cache(out.design, out.forest);
  return out;
}

void BM_GoldenSta(benchmark::State& state) {
  Prepared p = prepare(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sta(p.design, p.forest, nullptr));
  }
}
BENCHMARK(BM_GoldenSta)->Arg(200)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_GlobalRoute(benchmark::State& state) {
  Prepared p = prepare(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(global_route(p.design, p.forest));
  }
}
BENCHMARK(BM_GlobalRoute)->Arg(200)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_EvaluatorForward(benchmark::State& state) {
  Prepared p = prepare(static_cast<int>(state.range(0)));
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  const auto xs = p.forest.gather_x();
  const auto ys = p.forest.gather_y();
  PenaltyWeights w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_timing(model, *p.cache, p.design, xs, ys, w));
  }
}
BENCHMARK(BM_EvaluatorForward)->Arg(200)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_EvaluatorBackward(benchmark::State& state) {
  Prepared p = prepare(static_cast<int>(state.range(0)));
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  const auto xs = p.forest.gather_x();
  const auto ys = p.forest.gather_y();
  PenaltyWeights w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_timing_gradients(model, *p.cache, p.design, xs, ys, w));
  }
}
BENCHMARK(BM_EvaluatorBackward)->Arg(200)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_EvaluatorRecord(benchmark::State& state) {
  Prepared p = prepare(static_cast<int>(state.range(0)));
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  const auto xs = p.forest.gather_x();
  const auto ys = p.forest.gather_y();
  PenaltyWeights w;
  for (auto _ : state) {
    GradientEvaluator evaluator(model, *p.cache, p.design, xs, ys, w);
    benchmark::DoNotOptimize(evaluator.program().stats());
  }
}
BENCHMARK(BM_EvaluatorRecord)->Arg(200)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

// NOTE: both replay benches query the evaluator at *unchanged* coordinates,
// so dirty tracking memoizes the whole forward pass after the first
// iteration: ReplayGrad measures the pruned backward replay alone (the
// refinement loop's marginal gradient cost — its gradient call always
// follows a keep-best evaluation of the same coordinates), and
// ReplayForward the set_leaf memcmp + metrics path. Use bench_refine_replay
// for the full moving-coordinates loop.
void BM_EvaluatorReplayGrad(benchmark::State& state) {
  Prepared p = prepare(static_cast<int>(state.range(0)));
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  const auto xs = p.forest.gather_x();
  const auto ys = p.forest.gather_y();
  PenaltyWeights w;
  GradientEvaluator evaluator(model, *p.cache, p.design, xs, ys, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.gradients(xs, ys, w));
  }
}
BENCHMARK(BM_EvaluatorReplayGrad)
    ->Arg(200)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_EvaluatorReplayForward(benchmark::State& state) {
  Prepared p = prepare(static_cast<int>(state.range(0)));
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  const auto xs = p.forest.gather_x();
  const auto ys = p.forest.gather_y();
  PenaltyWeights w;
  GradientEvaluator evaluator(model, *p.cache, p.design, xs, ys, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(xs, ys, w));
  }
}
BENCHMARK(BM_EvaluatorReplayForward)
    ->Arg(200)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_TapeMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Tensor a = Tensor::randn(rng, n, 16, 1.0);
  const Tensor b = Tensor::randn(rng, 16, 16, 1.0);
  for (auto _ : state) {
    Tape tape;
    const Value va = tape.leaf(a, true);
    const Value vb = tape.leaf(b, true);
    const Value out = tape.sum_all(tape.matmul(va, vb));
    tape.backward(out);
    benchmark::DoNotOptimize(tape.grad(va));
  }
}
BENCHMARK(BM_TapeMatmul)->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tsteiner

BENCHMARK_MAIN();
