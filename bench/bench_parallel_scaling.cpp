// Thread-pool scaling: refine + sign-off on one Table-I design at pool
// widths 1/2/4/hw. The determinism contract means every width must produce
// bit-identical WNS/TNS and refined coordinates, so the speedup column is
// pure runtime — no accuracy trade. Results land in BENCH_parallel.json.
#include "bench_common.hpp"

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "util/parallel.hpp"
#include "util/timer.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

namespace {

struct Run {
  std::size_t threads = 0;
  double refine_s = 0.0;
  double signoff_s = 0.0;
  double wns = 0.0;
  double tns = 0.0;
  double sta_util = 0.0;
  double gr_util = 0.0;
  std::vector<double> xs, ys;
  double total() const { return refine_s + signoff_s; }
};

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

int main() {
  const double scale = env_scale(0.12);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  auto lib = std::make_unique<CellLibrary>(CellLibrary::make_default());
  BenchmarkSpec spec = benchmark_suite().front();
  std::printf("== Parallel scaling: %s at scale %.2f (hw threads: %u) ==\n\n",
              spec.name.c_str(), scale, hw);

  PreparedDesign pd = prepare_design(*lib, spec, scale);
  // Untrained model: construction is seeded and deterministic, which is all
  // the scaling measurement needs (inference cost is identical either way).
  const TimingGnn model(GnnConfig{}, lib->num_types());
  RefineOptions ropts = default_refine_options(pd);
  ropts.max_iterations = 20;

  std::set<std::size_t> widths{1, 2, 4, static_cast<std::size_t>(hw)};
  std::vector<Run> runs;
  for (const std::size_t w : widths) {
    set_parallel_threads(w);
    Run run;
    run.threads = w;
    WallTimer refine_timer;
    const RefineResult refined =
        refine_steiner_points(*pd.design, pd.flow->initial_forest(), model, ropts);
    run.refine_s = refine_timer.seconds();
    WallTimer signoff_timer;
    const FlowResult fr = pd.flow->run_signoff(refined.forest);
    run.signoff_s = signoff_timer.seconds();
    run.wns = fr.sta.wns;
    run.tns = fr.sta.tns;
    run.sta_util = fr.runtime.sta.utilization();
    run.gr_util = fr.runtime.global_route.utilization();
    run.xs = refined.forest.gather_x();
    run.ys = refined.forest.gather_y();
    runs.push_back(std::move(run));
  }
  set_parallel_threads(0);

  const Run& base = runs.front();
  bool bit_identical = true;
  for (const Run& r : runs) {
    bit_identical = bit_identical &&
                    std::memcmp(&r.wns, &base.wns, sizeof(double)) == 0 &&
                    std::memcmp(&r.tns, &base.tns, sizeof(double)) == 0 &&
                    bits_equal(r.xs, base.xs) && bits_equal(r.ys, base.ys);
  }

  Table t({"Threads", "Refine(s)", "Signoff(s)", "Total(s)", "Speedup", "STAutil", "GRutil"});
  for (const Run& r : runs) {
    t.add_row({std::to_string(r.threads), fmt(r.refine_s), fmt(r.signoff_s), fmt(r.total()),
               fmt(base.total() / std::max(1e-9, r.total()), 2), fmt(r.sta_util, 2),
               fmt(r.gr_util, 2)});
  }
  t.print();
  std::printf("\nBit-identical across widths: %s  (WNS %.6f  TNS %.6f)\n",
              bit_identical ? "yes" : "NO", base.wns, base.tns);

  FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f) {
    std::fprintf(f, "{\n  \"design\": \"%s\",\n  \"scale\": %.4f,\n", spec.name.c_str(), scale);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n  \"bit_identical\": %s,\n", hw,
                 bit_identical ? "true" : "false");
    std::fprintf(f, "  \"wns\": %.9f,\n  \"tns\": %.9f,\n  \"runs\": [\n", base.wns, base.tns);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const Run& r = runs[i];
      std::fprintf(f,
                   "    {\"threads\": %zu, \"refine_s\": %.4f, \"signoff_s\": %.4f, "
                   "\"total_s\": %.4f, \"speedup\": %.3f, \"sta_utilization\": %.3f}%s\n",
                   r.threads, r.refine_s, r.signoff_s, r.total(),
                   base.total() / std::max(1e-9, r.total()), r.sta_util,
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("Wrote BENCH_parallel.json\n");
  }
  return bit_identical ? 0 : 1;
}
