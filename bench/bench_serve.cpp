// Serving bench: throughput and tail latency of tsteiner_serve under many
// concurrent tenants. Writes several mixed-scale serve snapshots, starts an
// in-process server on an ephemeral loopback port, then drives N sessions
// (default 100) from a pool of client threads. Each session opens its
// snapshot, issues a few what-if rounds (move Steiner points, incremental
// sign-off), one full sign-off, and closes. Every request's wall time feeds
// the latency histogram; the headline numbers are sustained req/s and
// p50/p99 latency per request type.
//
// Exactness gate: a sample of sessions is replayed through the direct
// Flow / IncrementalSignoff API and every metric is compared bit-for-bit
// against what the server returned. The process exits nonzero on any
// mismatch (or any failed request), so CI can gate the serving path on
// exactness, not just availability.
//
// Results land in BENCH_serve.json.
//
// Knobs: TSTEINER_SERVE_SESSIONS (default 100), TSTEINER_SERVE_THREADS
// (client threads, default 8), TSTEINER_SERVE_ROUNDS (what-if rounds per
// session, default 3), TSTEINER_SERVE_SNAPSHOTS (default 4; every 4th is
// "small" scale, the rest "tiny"), TSTEINER_SERVE_SAMPLE (bit-identity
// replay stride, default 10), TSTEINER_THREADS (server pool width).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.hpp"
#include "flow/incremental_signoff.hpp"
#include "serve/client.hpp"
#include "serve/ops.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "verify/case_gen.hpp"

using namespace tsteiner;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

struct SessionPlan {
  std::string snapshot;
  std::vector<std::vector<serve::WhatIfMove>> rounds;
};

struct Sample {
  std::string type;  ///< request type for the latency breakdown
  double wall_s = 0.0;
};

struct SessionOutcome {
  std::vector<std::string> wns_bits;  ///< per what-if round
  std::vector<std::string> wl_bits;
  std::string signoff_wns_bits;
  std::vector<Sample> samples;
  std::string error;
};

std::vector<std::vector<serve::WhatIfMove>> plan_rounds(const SteinerForest& forest,
                                                        std::uint64_t seed, int session,
                                                        int rounds, double dist) {
  Rng rng(Rng::mix(seed, 0xbe9c4 + static_cast<std::uint64_t>(session)));
  std::vector<int> nets;
  for (const SteinerTree& tree : forest.trees) {
    if (tree.num_steiner_nodes() > 0) nets.push_back(tree.net);
  }
  std::vector<std::vector<serve::WhatIfMove>> plan;
  if (nets.empty()) return plan;
  for (int r = 0; r < rounds; ++r) {
    std::vector<serve::WhatIfMove> moves;
    const std::size_t k = 1 + rng.index(std::min<std::size_t>(3, nets.size()));
    for (std::size_t m = 0; m < k; ++m) {
      serve::WhatIfMove move;
      move.net = nets[rng.index(nets.size())];
      move.dx = rng.uniform(-dist, dist);
      move.dy = rng.uniform(-dist, dist);
      moves.push_back(move);
    }
    plan.push_back(std::move(moves));
  }
  return plan;
}

SessionOutcome drive_session(int port, const SessionPlan& plan) {
  SessionOutcome out;
  serve::ServeClient client;
  std::string error;
  if (!client.connect_tcp(port, &error)) {
    out.error = "connect: " + error;
    return out;
  }
  auto timed = [&out](const char* type, auto fn) {
    WallTimer t;
    auto reply = fn();
    out.samples.push_back({type, t.seconds()});
    return reply;
  };
  const auto opened = timed("open", [&] { return client.open(plan.snapshot); });
  if (!opened.ok) {
    out.error = "open: " + opened.error;
    return out;
  }
  const obs::JsonValue* session = opened.body.find_string("session");
  const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
  if (session == nullptr || fingerprint == nullptr) {
    out.error = "open response lacks session/fingerprint";
    return out;
  }
  for (const auto& moves : plan.rounds) {
    serve::Request req;
    req.type = serve::RequestType::kWhatIf;
    req.session = session->str;
    req.fingerprint = fingerprint->str;
    req.moves = moves;
    const auto reply = timed("whatif", [&] { return client.call(req); });
    if (!reply.ok) {
      out.error = "whatif: " + reply.error;
      return out;
    }
    double wns = 0.0, wl = 0.0;
    if (!serve::read_double_field(reply.body, "wns_ns", &wns) ||
        !serve::read_double_field(reply.body, "wirelength_dbu", &wl)) {
      out.error = "whatif response lacks metric fields";
      return out;
    }
    out.wns_bits.push_back(serve::double_bits_hex(wns));
    out.wl_bits.push_back(serve::double_bits_hex(wl));
  }
  serve::Request signoff;
  signoff.type = serve::RequestType::kSignoff;
  signoff.session = session->str;
  signoff.fingerprint = fingerprint->str;
  const auto reply = timed("signoff", [&] { return client.call(signoff); });
  if (!reply.ok) {
    out.error = "signoff: " + reply.error;
    return out;
  }
  double wns = 0.0;
  serve::read_double_field(reply.body, "wns_ns", &wns);
  out.signoff_wns_bits = serve::double_bits_hex(wns);
  timed("close", [&] { return client.close_session(session->str); });
  return out;
}

/// Direct-API replay of one session's plan; returns the same bit strings the
/// server-side run recorded, for the exactness gate.
SessionOutcome replay_direct(const SessionPlan& plan) {
  SessionOutcome out;
  std::string error;
  auto loaded = serve::load_session_design(plan.snapshot, FlowOptions{}, &error);
  if (loaded == nullptr) {
    out.error = "restore: " + error;
    return out;
  }
  SteinerForest cur = loaded->flow->initial_forest();
  IncrementalSignoff inc(loaded->design.get(), loaded->flow->options());
  for (const auto& moves : plan.rounds) {
    std::vector<int> dirty;
    serve::apply_whatif_moves(&cur, *loaded->design, moves, &dirty);
    const IncrementalSignoff::Result& r = inc.update(cur, dirty);
    out.wns_bits.push_back(serve::double_bits_hex(r.metrics.wns_ns));
    out.wl_bits.push_back(serve::double_bits_hex(r.metrics.wirelength_dbu));
  }
  const FlowResult golden = loaded->flow->run_signoff(cur);
  out.signoff_wns_bits = serve::double_bits_hex(golden.metrics.wns_ns);
  return out;
}

}  // namespace

int main() {
  const int sessions = std::max(1, env_int("TSTEINER_SERVE_SESSIONS", 100));
  const int threads = std::max(1, env_int("TSTEINER_SERVE_THREADS", 8));
  const int rounds = std::max(1, env_int("TSTEINER_SERVE_ROUNDS", 3));
  const int num_snaps = std::max(1, env_int("TSTEINER_SERVE_SNAPSHOTS", 4));
  const int sample_stride = std::max(1, env_int("TSTEINER_SERVE_SAMPLE", 10));
  const std::uint64_t seed = 7;

  std::system("mkdir -p bench_serve_tmp");
  std::printf("writing %d snapshot(s) ...\n", num_snaps);
  std::vector<std::string> snaps;
  for (int s = 0; s < num_snaps; ++s) {
    // Mixed tenancy: every 4th snapshot is "small" scale, the rest "tiny".
    const std::string scale = (s % 4 == 3) ? "small" : "tiny";
    const verify::FuzzCase c = verify::make_case(Rng::mix(seed, s), scale);
    Design design = c.design;
    const Flow flow(&design);
    BenchmarkSpec spec;
    spec.name = c.params.name;
    spec.target_cells = static_cast<int>(c.num_cells());
    spec.endpoints = static_cast<int>(design.endpoint_pins().size());
    spec.seed = c.seed;
    const std::string path = "bench_serve_tmp/design_" + std::to_string(s) + ".tsdb";
    if (!serve::save_session_snapshot(spec, design, flow.calibration(),
                                      flow.initial_forest(), verify::fuzz_library(), nullptr,
                                      SteinerPredictor::shared_pretrained().get(), path)) {
      std::printf("FAILED to write %s\n", path.c_str());
      return 1;
    }
    snaps.push_back(path);
  }

  // Plans derive from the restored forest so the replay agrees on the
  // movable-net universe.
  std::vector<SessionPlan> plans;
  for (int s = 0; s < sessions; ++s) {
    SessionPlan plan;
    plan.snapshot = snaps[static_cast<std::size_t>(s) % snaps.size()];
    std::string error;
    auto loaded = serve::load_session_design(plan.snapshot, FlowOptions{}, &error);
    if (loaded == nullptr) {
      std::printf("FAILED to restore %s: %s\n", plan.snapshot.c_str(), error.c_str());
      return 1;
    }
    const double dist = static_cast<double>(loaded->design->die().width()) / 20.0;
    plan.rounds = plan_rounds(loaded->flow->initial_forest(), seed, s, rounds, dist);
    plans.push_back(std::move(plan));
  }

  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::printf("server start FAILED: %s\n", error.c_str());
    return 1;
  }
  const int port = server.bound_tcp_port();

  std::printf("driving %d session(s) over %d client thread(s), %d what-if round(s) each\n",
              sessions, threads, rounds);
  std::vector<SessionOutcome> outcomes(plans.size());
  std::atomic<std::size_t> next{0};
  WallTimer wall;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t s = next.fetch_add(1);
        if (s >= plans.size()) return;
        outcomes[s] = drive_session(port, plans[s]);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double total_s = wall.seconds();
  const auto server_stats = server.stats();
  const auto cache_stats = server.sessions().stats();
  server.stop();

  // Aggregate latency per request type and overall.
  std::map<std::string, std::vector<double>> by_type;
  std::vector<double> all;
  std::uint64_t total_requests = 0;
  int failures = 0;
  for (std::size_t s = 0; s < outcomes.size(); ++s) {
    if (!outcomes[s].error.empty()) {
      std::printf("session %zu FAILED: %s\n", s, outcomes[s].error.c_str());
      ++failures;
      continue;
    }
    for (const Sample& sample : outcomes[s].samples) {
      by_type[sample.type].push_back(sample.wall_s);
      all.push_back(sample.wall_s);
      ++total_requests;
    }
  }
  std::sort(all.begin(), all.end());
  const double req_per_s =
      total_s > 1e-12 ? static_cast<double>(total_requests) / total_s : 0.0;

  // Exactness gate on a sample of sessions.
  int checked = 0, mismatches = 0;
  for (std::size_t s = 0; s < plans.size(); s += static_cast<std::size_t>(sample_stride)) {
    if (!outcomes[s].error.empty()) continue;
    const SessionOutcome direct = replay_direct(plans[s]);
    if (!direct.error.empty()) {
      std::printf("replay %zu FAILED: %s\n", s, direct.error.c_str());
      ++failures;
      continue;
    }
    ++checked;
    if (outcomes[s].wns_bits != direct.wns_bits || outcomes[s].wl_bits != direct.wl_bits ||
        outcomes[s].signoff_wns_bits != direct.signoff_wns_bits) {
      std::printf("session %zu NOT bit-identical to direct flow\n", s);
      ++mismatches;
    }
  }

  std::printf("%llu request(s) in %.2fs: %.1f req/s | p50 %.1f ms  p99 %.1f ms\n",
              static_cast<unsigned long long>(total_requests), total_s, req_per_s,
              1e3 * percentile(all, 50.0), 1e3 * percentile(all, 99.0));
  for (auto& [type, lat] : by_type) {
    std::sort(lat.begin(), lat.end());
    std::printf("  %-8s n=%5zu  p50 %7.2f ms  p99 %7.2f ms\n", type.c_str(), lat.size(),
                1e3 * percentile(lat, 50.0), 1e3 * percentile(lat, 99.0));
  }
  std::printf("cache: %llu load(s), %llu hit(s), %llu eviction(s) | %d/%d sampled "
              "session(s) bit-identical\n",
              static_cast<unsigned long long>(cache_stats.loads),
              static_cast<unsigned long long>(cache_stats.cache_hits),
              static_cast<unsigned long long>(cache_stats.evictions), checked - mismatches,
              checked);

  FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"sessions\": %d,\n  \"client_threads\": %d,\n", sessions,
                 threads);
    std::fprintf(f, "  \"whatif_rounds\": %d,\n  \"snapshots\": %d,\n", rounds, num_snaps);
    std::fprintf(f, "  \"requests\": %llu,\n  \"wall_s\": %.3f,\n  \"req_per_s\": %.2f,\n",
                 static_cast<unsigned long long>(total_requests), total_s, req_per_s);
    std::fprintf(f, "  \"p50_ms\": %.3f,\n  \"p99_ms\": %.3f,\n",
                 1e3 * percentile(all, 50.0), 1e3 * percentile(all, 99.0));
    std::fprintf(f, "  \"by_type\": {\n");
    std::size_t i = 0;
    for (auto& [type, lat] : by_type) {
      std::fprintf(f, "    \"%s\": {\"n\": %zu, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                   type.c_str(), lat.size(), 1e3 * percentile(lat, 50.0),
                   1e3 * percentile(lat, 99.0), ++i < by_type.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"server\": {\"connections\": %llu, \"requests\": %llu, "
                 "\"errors\": %llu, \"batches\": %llu},\n",
                 static_cast<unsigned long long>(server_stats.connections),
                 static_cast<unsigned long long>(server_stats.requests),
                 static_cast<unsigned long long>(server_stats.errors),
                 static_cast<unsigned long long>(server_stats.batches));
    std::fprintf(f,
                 "  \"cache\": {\"loads\": %llu, \"hits\": %llu, \"evictions\": %llu},\n",
                 static_cast<unsigned long long>(cache_stats.loads),
                 static_cast<unsigned long long>(cache_stats.cache_hits),
                 static_cast<unsigned long long>(cache_stats.evictions));
    std::fprintf(f, "  \"sampled_sessions\": %d,\n  \"mismatches\": %d,\n", checked,
                 mismatches);
    std::fprintf(f, "  \"failed_sessions\": %d,\n  \"bit_identical\": %s\n}\n", failures,
                 mismatches == 0 && failures == 0 ? "true" : "false");
    std::fclose(f);
    std::printf("Wrote BENCH_serve.json\n");
  }
  return mismatches == 0 && failures == 0 ? 0 : 1;
}
