// Ablation: physics-anchored delay heads (Elmore / intrinsic + R*C with
// bounded learned corrections) vs free-form softplus MLP heads. Both reach
// high arrival R^2; only the anchored variant produces refinement gradients
// that transfer to true sign-off — the central calibration finding of this
// reproduction (DESIGN.md §3b.4).
#include "bench_common.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  const double scale = env_scale(0.25);
  const int epochs = env_epochs(30);
  std::printf("== Ablation: physics anchor on des (scale %.2f) ==\n\n", scale);

  Table t({"heads", "R2(all)", "R2(ends)", "signoff WNS", "WNS ratio", "TNS ratio"});
  for (const bool anchored : {true, false}) {
    GnnConfig cfg;
    cfg.physics_anchor = anchored;
    SingleDesignSetup s = prepare_single("des", scale, epochs, 3, cfg);
    const FlowResult base = s.pd.flow->run_signoff(s.pd.flow->initial_forest());

    TrainOptions topt;
    Trainer trainer(s.model.get(), topt);
    const EvalMetrics m = trainer.evaluate(s.samples[0]);

    const RefineOptions ropts = default_refine_options(s.pd);
    const RefineResult refined =
        refine_steiner_points(*s.pd.design, s.pd.flow->initial_forest(), *s.model, ropts);
    const FlowResult opt = s.pd.flow->run_signoff(refined.forest);
    t.add_row({anchored ? "physics-anchored" : "free-form", fmt(m.r2_all, 4),
               fmt(m.r2_ends, 4), fmt(opt.metrics.wns_ns),
               fmt(ratio(opt.metrics.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(opt.metrics.tns_ns, base.metrics.tns_ns), 4)});
  }
  t.print();
  std::printf("\nexpected shape: similar fit quality, but only the anchored heads give "
              "WNS/TNS ratios <= 1 after refinement\n");
  return 0;
}
