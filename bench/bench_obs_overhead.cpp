// Observability overhead bench + artifact smoke: runs the identical
// deterministic refinement workload three times — instrumentation off,
// metrics-only, and full (trace + metrics + run report + refine JSONL) —
// and reports the wall-time ratios in BENCH_obs.json. Targets: metrics-only
// <= 2% overhead, full <= 5% (warnings only; wall-clock ratios are too noisy
// on shared CI runners to gate on).
//
// What the process *does* gate on (exit 1):
//   * bit-identical refinement results across all three modes — the
//     instrumentation must never perturb the optimization;
//   * the full-mode artifacts are present and well-formed: the trace parses
//     and has events, the run report parses and embeds the refine runs, and
//     the JSONL stream has one line per iteration.
// The CI obs-smoke leg runs this binary and then re-validates the same
// artifacts with `tsteiner_trace verify` (the external contract).
//
// A serve section repeats the exercise for the serving layer: the same
// what-if request stream against an in-process server with telemetry off
// vs full (serve spans + metrics), reporting the wall-time ratio and gating
// bit-identical what-if responses across the two modes.
//
// Knobs: TSTEINER_OBS_CELLS (default 800), TSTEINER_OBS_ITERS (default 20),
// TSTEINER_OBS_REPEATS (default 3), TSTEINER_OBS_SERVE_ROUNDS (what-if
// rounds per serve repeat, default 20), TSTEINER_THREADS (pool width).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "netlist/design_generator.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "place/placer.hpp"
#include "serve/client.hpp"
#include "serve/ops.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/refine.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace tsteiner;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Prepared {
  Design design;
  SteinerForest forest;
};

Prepared prepare(int comb) {
  GeneratorParams p;
  p.num_comb_cells = comb;
  p.num_registers = comb / 10;
  p.num_primary_inputs = 8;
  p.num_primary_outputs = 8;
  p.seed = 12;
  Prepared out{generate_design(lib(), p), {}};
  place_design(out.design);
  out.forest = build_forest(out.design);
  const StaResult sta = run_sta(out.design, out.forest, nullptr);
  out.design.set_clock_period(0.6 * sta.max_arrival);
  return out;
}

struct ModeResult {
  double best_s = 1e30;  ///< fastest repeat (least scheduler noise)
  double best_wns = 0.0;
  double best_tns = 0.0;
  int iterations = 0;
};

ModeResult run_mode(const Prepared& p, const TimingGnn& model, const RefineOptions& ropts,
                    int repeats) {
  ModeResult out;
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    const RefineResult res = refine_steiner_points(p.design, p.forest, model, ropts);
    const double s = t.seconds();
    if (s < out.best_s) out.best_s = s;
    out.best_wns = res.best_wns;
    out.best_tns = res.best_tns;
    out.iterations = res.iterations;
  }
  return out;
}

int count_lines(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++n;
  }
  return n;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- serve-layer overhead ----------------------------------------------------

/// Write a serve snapshot of the prepared design (no model; the serve
/// workload is what-if probes, the cheapest sign-off-bearing op).
bool write_serve_snapshot(const Prepared& p, const std::string& path) {
  Design design = p.design;  // the Flow constructor recalibrates the clock
  const Flow flow(&design);
  BenchmarkSpec spec;
  spec.name = "obs_serve";
  spec.target_cells = static_cast<int>(design.cells().size());
  spec.endpoints = static_cast<int>(design.endpoint_pins().size());
  spec.seed = 12;
  return serve::save_session_snapshot(spec, design, flow.calibration(),
                                      flow.initial_forest(), lib(), nullptr, nullptr, path);
}

/// Deterministic what-if stream shared by both serve modes.
std::vector<std::vector<serve::WhatIfMove>> plan_serve_rounds(const std::string& snap,
                                                              int rounds) {
  std::vector<std::vector<serve::WhatIfMove>> plan;
  std::string error;
  auto loaded = serve::load_session_design(snap, FlowOptions{}, &error);
  if (loaded == nullptr) return plan;
  std::vector<int> nets;
  for (const SteinerTree& tree : loaded->flow->initial_forest().trees) {
    if (tree.num_steiner_nodes() > 0) nets.push_back(tree.net);
  }
  if (nets.empty()) return plan;
  const double dist = static_cast<double>(loaded->design->die().width()) / 20.0;
  Rng rng(0x0b5'5e12);
  for (int r = 0; r < rounds; ++r) {
    serve::WhatIfMove move;
    move.net = nets[rng.index(nets.size())];
    move.dx = rng.uniform(-dist, dist);
    move.dy = rng.uniform(-dist, dist);
    plan.push_back({move});
  }
  return plan;
}

struct ServeModeResult {
  double best_s = 1e30;               ///< fastest repeat, request loop only
  std::vector<std::string> wns_bits;  ///< per round, from the last repeat
  bool ok = false;
};

/// One serve mode: fresh in-process server per repeat, one sequential
/// session driving the shared what-if stream. Obs state is the caller's.
ServeModeResult run_serve_mode(const std::string& snap,
                               const std::vector<std::vector<serve::WhatIfMove>>& rounds,
                               int repeats) {
  ServeModeResult out;
  for (int r = 0; r < repeats; ++r) {
    serve::ServeOptions so;
    so.tcp_port = 0;
    serve::Server server(so);
    std::string error;
    if (!server.start(&error)) return out;
    serve::ServeClient client;
    if (!client.connect_tcp(server.bound_tcp_port(), &error)) return out;
    const auto opened = client.open(snap);
    const obs::JsonValue* session = opened.body.find_string("session");
    const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
    if (!opened.ok || session == nullptr || fingerprint == nullptr) return out;
    std::vector<std::string> bits;
    WallTimer t;
    for (const auto& moves : rounds) {
      serve::Request req;
      req.type = serve::RequestType::kWhatIf;
      req.session = session->str;
      req.fingerprint = fingerprint->str;
      req.moves = moves;
      const auto reply = client.call(req);
      double wns = 0.0;
      if (!reply.ok || !serve::read_double_field(reply.body, "wns_ns", &wns)) return out;
      bits.push_back(serve::double_bits_hex(wns));
    }
    const double s = t.seconds();
    if (s < out.best_s) out.best_s = s;
    out.wns_bits = std::move(bits);
    client.close_session(session->str);
    client.close();
    server.stop();
  }
  out.ok = true;
  return out;
}

}  // namespace

int main() {
  const int cells = env_int("TSTEINER_OBS_CELLS", 800);
  const int iters = env_int("TSTEINER_OBS_ITERS", 20);
  const int repeats = env_int("TSTEINER_OBS_REPEATS", 3);
  std::printf("preparing design (%d comb cells) ...\n", cells);
  const Prepared p = prepare(cells);
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  RefineOptions ropts;
  ropts.max_iterations = iters;

  // Warmup: touch every code path once so first-run allocation and
  // first-touch costs hit none of the measured modes.
  (void)refine_steiner_points(p.design, p.forest, model, ropts);

  // --- mode 1: everything off -------------------------------------------
  obs::reset_trace();
  obs::set_metrics_enabled(false);
  obs::set_run_report_path("");
  obs::set_iteration_log_path("");
  const ModeResult off = run_mode(p, model, ropts, repeats);
  std::printf("off          : %.3fs (%d iterations)\n", off.best_s, off.iterations);

  // --- mode 2: metrics only ---------------------------------------------
  obs::set_metrics_enabled(true);
  const ModeResult metrics = run_mode(p, model, ropts, repeats);
  std::printf("metrics-only : %.3fs\n", metrics.best_s);

  // --- mode 3: full (trace + metrics + report + JSONL) -------------------
  const std::string trace_path = "obs_trace.json";
  const std::string report_path = "tsteiner_run.json";
  const std::string jsonl_path = "obs_refine.jsonl";
  obs::run_report().reset();
  obs::enable_trace(trace_path);
  obs::set_run_report_path(report_path);
  obs::set_iteration_log_path(jsonl_path);
  const ModeResult full = run_mode(p, model, ropts, repeats);
  obs::disable_trace();
  obs::set_iteration_log_path("");
  const bool report_written = obs::flush_run_report();
  obs::set_run_report_path("");
  obs::set_metrics_enabled(false);
  std::printf("full         : %.3fs\n", full.best_s);

  const double metrics_ratio = off.best_s > 1e-12 ? metrics.best_s / off.best_s : 0.0;
  const double full_ratio = off.best_s > 1e-12 ? full.best_s / off.best_s : 0.0;
  std::printf("overhead: metrics-only %.1f%%, full %.1f%%\n", 100.0 * (metrics_ratio - 1.0),
              100.0 * (full_ratio - 1.0));
  if (metrics_ratio > 1.02) {
    std::printf("WARNING: metrics-only overhead %.1f%% above the 2%% target\n",
                100.0 * (metrics_ratio - 1.0));
  }
  if (full_ratio > 1.05) {
    std::printf("WARNING: full-instrumentation overhead %.1f%% above the 5%% target\n",
                100.0 * (full_ratio - 1.0));
  }

  // --- gates ------------------------------------------------------------
  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::printf("FAIL: %s\n", what);
      ok = false;
    }
  };
  // Instrumentation must not perturb the optimization.
  check(off.best_wns == metrics.best_wns && off.best_wns == full.best_wns &&
            off.best_tns == metrics.best_tns && off.best_tns == full.best_tns &&
            off.iterations == metrics.iterations && off.iterations == full.iterations,
        "refinement results differ across instrumentation modes");
  // Full-mode artifacts are present and well-formed.
  const auto trace_doc = obs::parse_json(slurp(trace_path));
  check(trace_doc.has_value(), "trace does not parse");
  check(trace_doc && trace_doc->find_array("traceEvents") != nullptr &&
            !trace_doc->find_array("traceEvents")->array.empty(),
        "trace has no events");
  check(report_written, "run report was not written");
  const auto report_doc = obs::parse_json(slurp(report_path));
  check(report_doc.has_value(), "run report does not parse");
  check(report_doc && report_doc->find_array("refine") != nullptr &&
            report_doc->find_array("refine")->array.size() ==
                static_cast<std::size_t>(repeats),
        "run report does not embed one refine record per repeat");
  const int jsonl_lines = count_lines(jsonl_path);
  check(jsonl_lines == full.iterations * repeats,
        "JSONL line count does not match iterations run");

  // --- serve layer: off vs full (serve spans + metrics) ------------------
  const int serve_rounds = env_int("TSTEINER_OBS_SERVE_ROUNDS", 20);
  const std::string serve_snap = "obs_serve_snapshot.tsdb";
  const std::string serve_trace_path = "obs_serve_trace.json";
  check(write_serve_snapshot(p, serve_snap), "serve snapshot was not written");
  const auto serve_plan = plan_serve_rounds(serve_snap, serve_rounds);
  check(!serve_plan.empty(), "serve what-if plan is empty");

  obs::reset_trace();
  obs::set_metrics_enabled(false);
  const ServeModeResult serve_off = run_serve_mode(serve_snap, serve_plan, repeats);
  std::printf("serve off    : %.3fs (%d what-if rounds)\n", serve_off.best_s, serve_rounds);

  obs::enable_trace(serve_trace_path);
  obs::set_metrics_enabled(true);
  const ServeModeResult serve_full = run_serve_mode(serve_snap, serve_plan, repeats);
  obs::disable_trace();
  obs::set_metrics_enabled(false);
  std::printf("serve full   : %.3fs\n", serve_full.best_s);

  const double serve_ratio =
      serve_off.best_s > 1e-12 ? serve_full.best_s / serve_off.best_s : 0.0;
  std::printf("serve overhead: full %.1f%%\n", 100.0 * (serve_ratio - 1.0));
  if (serve_ratio > 1.05) {
    std::printf("WARNING: serve full-telemetry overhead %.1f%% above the 5%% target\n",
                100.0 * (serve_ratio - 1.0));
  }
  check(serve_off.ok && serve_full.ok, "a serve mode failed to run");
  check(serve_off.wns_bits == serve_full.wns_bits,
        "serve what-if responses differ across telemetry modes");
  const auto serve_trace_doc = obs::parse_json(slurp(serve_trace_path));
  check(serve_trace_doc.has_value() &&
            serve_trace_doc->find_array("traceEvents") != nullptr &&
            !serve_trace_doc->find_array("traceEvents")->array.empty(),
        "serve trace is missing or empty");

  FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"cells\": %d,\n  \"iterations\": %d,\n  \"repeats\": %d,\n",
                 cells, off.iterations, repeats);
    std::fprintf(f, "  \"off_s\": %.4f,\n  \"metrics_s\": %.4f,\n  \"full_s\": %.4f,\n",
                 off.best_s, metrics.best_s, full.best_s);
    std::fprintf(f, "  \"metrics_overhead_ratio\": %.4f,\n  \"full_overhead_ratio\": %.4f,\n",
                 metrics_ratio, full_ratio);
    std::fprintf(f, "  \"metrics_target_ratio\": 1.02,\n  \"full_target_ratio\": 1.05,\n");
    std::fprintf(f, "  \"jsonl_lines\": %d,\n", jsonl_lines);
    std::fprintf(f,
                 "  \"serve\": {\"rounds\": %d, \"off_s\": %.4f, \"full_s\": %.4f, "
                 "\"full_overhead_ratio\": %.4f, \"target_ratio\": 1.05},\n",
                 serve_rounds, serve_off.best_s, serve_full.best_s, serve_ratio);
    std::fprintf(f, "  \"best_wns_ns\": %.6f,\n  \"best_tns_ns\": %.6f,\n", full.best_wns,
                 full.best_tns);
    std::fprintf(f, "  \"modes_identical\": %s,\n  \"artifacts_ok\": %s\n}\n",
                 off.best_wns == full.best_wns ? "true" : "false", ok ? "true" : "false");
    std::fclose(f);
    std::printf("Wrote BENCH_obs.json\n");
  }
  return ok ? 0 : 1;
}
