// Table II: sign-off timing and routing quality, baseline flow vs
// TSteiner + flow, per design plus average ratios.
//
// Paper averages: WNS 0.888, TNS 0.929, #Vios 0.967, WL 0.9999,
// #Vias 1.0001, #DRV 0.9549 (TSteiner / baseline; lower is better for all).
#include "bench_common.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  SuiteOptions opts = default_suite_options();
  std::printf("== Table II: concurrent timing optimization (scale %.2f) ==\n\n", opts.scale);
  TrainedSuite suite = build_and_train_suite(opts);

  Table t({"Benchmark", "WNS", "TNS", "#Vios", "WL", "#Vias", "#DRV",
           "WNS'", "TNS'", "#Vios'", "WL'", "#Vias'", "#DRV'"});
  double r_wns = 0, r_tns = 0, r_vios = 0, r_wl = 0, r_vias = 0, r_drv = 0;
  int counted = 0;
  for (PreparedDesign& pd : suite.designs) {
    const FlowResult base = pd.flow->run_signoff(pd.flow->initial_forest());
    const RefineOptions ropts = default_refine_options(pd);
    const RefineResult refined =
        refine_steiner_points(*pd.design, pd.flow->initial_forest(), *suite.model, ropts);
    const FlowResult opt = pd.flow->run_signoff(refined.forest);

    t.add_row({pd.spec.name,
               fmt(base.metrics.wns_ns), fmt(base.metrics.tns_ns, 1),
               Table::num(base.metrics.num_vios), fmt(base.metrics.wirelength_dbu, 0),
               Table::num(base.metrics.num_vias), Table::num(base.metrics.num_drvs),
               fmt(opt.metrics.wns_ns), fmt(opt.metrics.tns_ns, 1),
               Table::num(opt.metrics.num_vios), fmt(opt.metrics.wirelength_dbu, 0),
               Table::num(opt.metrics.num_vias), Table::num(opt.metrics.num_drvs)});

    if (base.metrics.wns_ns < -1e-9) {
      r_wns += ratio(opt.metrics.wns_ns, base.metrics.wns_ns);
      r_tns += ratio(opt.metrics.tns_ns, base.metrics.tns_ns);
      r_vios += ratio(static_cast<double>(opt.metrics.num_vios),
                      static_cast<double>(base.metrics.num_vios));
      r_wl += ratio(opt.metrics.wirelength_dbu, base.metrics.wirelength_dbu);
      r_vias += ratio(static_cast<double>(opt.metrics.num_vias),
                      static_cast<double>(base.metrics.num_vias));
      r_drv += ratio(static_cast<double>(opt.metrics.num_drvs),
                     static_cast<double>(base.metrics.num_drvs));
      ++counted;
    }
  }
  t.print();
  if (counted > 0) {
    const double n = counted;
    std::printf("\nAverage ratios (TSteiner / baseline, %d designs with violations):\n", counted);
    std::printf("  WNS %.3f  TNS %.3f  #Vios %.3f  WL %.4f  #Vias %.4f  #DRV %.4f\n",
                r_wns / n, r_tns / n, r_vios / n, r_wl / n, r_vias / n, r_drv / n);
    std::printf("  paper:  WNS 0.888  TNS 0.929  #Vios 0.967  WL 0.9999  #Vias 1.0001  "
                "#DRV 0.9549\n");
  }
  return 0;
}
