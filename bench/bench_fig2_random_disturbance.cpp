// Fig. 2: distribution of the sign-off TNS ratio after random Steiner-point
// disturbance (disturbed / original), 10+ trials per design. The paper's
// observation: the ratio spreads visibly around 1.0 (Steiner positions
// matter) but the mean stays close to 1.0 (random moves don't help on
// average). The spread grows with the disturbance radius; small sub-gcell
// moves reproduce the paper's near-1.0 regime, larger radii shift the whole
// distribution right (wirelength-dominated harm).
#include "bench_common.hpp"

#include "util/stats.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  const double scale = env_scale(0.12);
  const int trials_per_design = 12;
  std::printf("== Fig. 2: sign-off TNS ratio under random disturbance "
              "(scale %.2f, %d trials/design) ==\n\n",
              scale, trials_per_design);

  const CellLibrary lib = CellLibrary::make_default();

  // Prepare the six training designs once; reuse across radii.
  std::vector<PreparedDesign> designs;
  std::vector<double> base_tns;
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    if (!spec.is_training) continue;
    designs.push_back(prepare_design(lib, spec, scale));
    const FlowResult base = designs.back().flow->run_signoff(
        designs.back().flow->initial_forest());
    base_tns.push_back(base.metrics.tns_ns);
  }

  Rng rng(4242);
  for (const double dist : {2.0, 4.0, 8.0}) {
    std::vector<double> ratios;
    for (std::size_t d = 0; d < designs.size(); ++d) {
      if (base_tns[d] >= -1e-9) continue;
      for (int k = 0; k < trials_per_design; ++k) {
        Rng child = rng.fork();
        const SteinerForest variant = random_disturb(
            designs[d].flow->initial_forest(), designs[d].design->die(), dist, child);
        const FlowResult moved = designs[d].flow->run_signoff(variant);
        ratios.push_back(ratio(moved.metrics.tns_ns, base_tns[d]));
      }
    }
    if (ratios.empty()) continue;
    const double lo = std::min(0.98, percentile(ratios, 0.0) - 0.005);
    const double hi = std::max(1.02, percentile(ratios, 100.0) + 0.005);
    Histogram hist(lo, hi, 12);
    for (double r : ratios) hist.add(r);
    std::printf("radius %.0f DBU: mean %.4f  stddev %.4f  min %.4f  max %.4f\n", dist,
                mean(ratios), stddev(ratios), percentile(ratios, 0.0),
                percentile(ratios, 100.0));
    const std::size_t total = std::max<std::size_t>(1, hist.total());
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      const int bar = static_cast<int>(54.0 * static_cast<double>(hist.counts[b]) /
                                       static_cast<double>(total));
      std::printf("  %.3f | %-54s %zu\n", hist.bucket_center(b),
                  std::string(static_cast<std::size_t>(bar), '#').c_str(), hist.counts[b]);
    }
    std::printf("\n");
  }
  std::printf("paper's reading: ratios deviate from 1 (Steiner positions matter) while\n"
              "the mean stays near 1.0 at small radii; random moving does not help.\n");
  return 0;
}
