// TSteinerDB warm-restore bench: runs build_and_train_suite() cold (generate,
// place, label, train, snapshot), then a second time warm from the snapshot,
// and checks that every restored design reproduces its sign-off metrics
// bit-exactly and every label vector matches. Results land in BENCH_db.json;
// the process exits nonzero on any mismatch so CI can gate on it.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace tsteiner;

namespace {

struct SuiteObservation {
  std::vector<SignoffMetrics> metrics;
  std::vector<std::vector<double>> labels;
  std::vector<double> model_params;
};

SuiteObservation observe(const TrainedSuite& suite) {
  SuiteObservation obs;
  for (const PreparedDesign& pd : suite.designs) {
    obs.metrics.push_back(pd.flow->run_signoff(pd.flow->initial_forest()).metrics);
  }
  for (const TrainingSample& s : suite.base_samples) obs.labels.push_back(s.arrival_label);
  if (suite.model != nullptr) {
    for (const Tensor& p : suite.model->parameters()) {
      for (std::size_t i = 0; i < p.size(); ++i) obs.model_params.push_back(p[i]);
    }
  }
  return obs;
}

bool bit_identical(const SuiteObservation& a, const SuiteObservation& b) {
  if (a.metrics.size() != b.metrics.size() || a.labels.size() != b.labels.size() ||
      a.model_params.size() != b.model_params.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    if (std::memcmp(&a.metrics[i], &b.metrics[i], sizeof(SignoffMetrics)) != 0) return false;
  }
  for (std::size_t i = 0; i < a.labels.size(); ++i) {
    if (a.labels[i].size() != b.labels[i].size()) return false;
    if (std::memcmp(a.labels[i].data(), b.labels[i].data(),
                    a.labels[i].size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return std::memcmp(a.model_params.data(), b.model_params.data(),
                     a.model_params.size() * sizeof(double)) == 0;
}

}  // namespace

int main() {
  SuiteOptions opts = bench::default_suite_options();
  opts.train.epochs = env_epochs(6);  // restore skips training entirely anyway
  opts.model_cache_dir.clear();       // isolate from the shared model cache

  const char* db_path = "bench_db_snapshot.tsdb";
  std::remove(db_path);
  setenv("TSTEINER_DB", db_path, 1);

  std::printf("cold run (scale %.3f, %d epochs) ...\n", opts.scale, opts.train.epochs);
  WallTimer cold_timer;
  const TrainedSuite cold = build_and_train_suite(opts);
  const double cold_s = cold_timer.seconds();
  const SuiteObservation cold_obs = observe(cold);

  std::printf("warm run (restoring %s) ...\n", db_path);
  WallTimer warm_timer;
  const TrainedSuite warm = build_and_train_suite(opts);
  const double warm_s = warm_timer.seconds();
  const SuiteObservation warm_obs = observe(warm);

  const bool identical = bit_identical(cold_obs, warm_obs);
  const double speedup = warm_s > 1e-9 ? cold_s / warm_s : 0.0;
  std::printf("cold %.2fs, warm %.2fs, speedup %.1fx, bit_identical %s\n", cold_s, warm_s,
              speedup, identical ? "yes" : "NO");

  FILE* f = std::fopen("BENCH_db.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"scale\": %.4f,\n  \"epochs\": %d,\n", opts.scale,
                 opts.train.epochs);
    std::fprintf(f, "  \"designs\": %zu,\n", cold.designs.size());
    std::fprintf(f, "  \"cold_s\": %.3f,\n  \"warm_s\": %.3f,\n  \"speedup\": %.2f,\n",
                 cold_s, warm_s, speedup);
    std::fprintf(f, "  \"bit_identical\": %s\n}\n", identical ? "true" : "false");
    std::fclose(f);
    std::printf("Wrote BENCH_db.json\n");
  }
  return identical ? 0 : 1;
}
