// Ablation: number of Steiner-graph message-passing iterations (the paper
// fixes three: "The steps above are repeated until the Steiner tree
// information is fully fused. In practice, we set three iterations.").
// Trains one evaluator per iteration count and compares prediction R^2 and
// downstream refinement quality.
#include "bench_common.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  const double scale = env_scale(0.25);
  const int epochs = env_epochs(24);
  std::printf("== Ablation: Steiner-graph iterations on des (scale %.2f) ==\n\n", scale);

  Table t({"iterations", "R2(all)", "R2(ends)", "WNS ratio", "TNS ratio"});
  for (const int iters : {1, 2, 3, 4}) {
    GnnConfig cfg;
    cfg.steiner_iters = iters;
    SingleDesignSetup s = prepare_single("des", scale, epochs, 3, cfg);
    const FlowResult base = s.pd.flow->run_signoff(s.pd.flow->initial_forest());

    TrainOptions topt;
    Trainer trainer(s.model.get(), topt);
    const EvalMetrics m = trainer.evaluate(s.samples[0]);

    const RefineOptions ropts = default_refine_options(s.pd);
    const RefineResult refined =
        refine_steiner_points(*s.pd.design, s.pd.flow->initial_forest(), *s.model, ropts);
    const FlowResult opt = s.pd.flow->run_signoff(refined.forest);
    t.add_row({Table::num(static_cast<long long>(iters)), fmt(m.r2_all, 4), fmt(m.r2_ends, 4),
               fmt(ratio(opt.metrics.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(opt.metrics.tns_ns, base.metrics.tns_ns), 4)});
  }
  t.print();
  std::printf("\nexpected shape: quality saturates around 3 iterations (paper's choice)\n");
  return 0;
}
