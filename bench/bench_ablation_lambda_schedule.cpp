// Ablation: the lambda schedule of Section IV-A ("Starting from the 5th
// iteration, we increase lambda_w and lambda_t by 1% in each following
// iteration") vs constant weights, and the lambda_w : lambda_t balance.
#include "bench_common.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  const double scale = env_scale(0.25);
  std::printf("== Ablation: lambda schedule on des (scale %.2f) ==\n\n", scale);
  SingleDesignSetup s = prepare_single("des", scale, env_epochs(30), 3);
  const FlowResult base = s.pd.flow->run_signoff(s.pd.flow->initial_forest());
  std::printf("baseline: WNS %.3f TNS %.1f\n\n", base.metrics.wns_ns, base.metrics.tns_ns);

  Table t({"configuration", "iters", "WNS ratio", "TNS ratio"});
  auto run = [&](const std::string& name, const RefineOptions& ropts) {
    const RefineResult refined =
        refine_steiner_points(*s.pd.design, s.pd.flow->initial_forest(), *s.model, ropts);
    const FlowResult opt = s.pd.flow->run_signoff(refined.forest);
    t.add_row({name, Table::num(static_cast<long long>(refined.iterations)),
               fmt(ratio(opt.metrics.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(opt.metrics.tns_ns, base.metrics.tns_ns), 4)});
  };

  {
    RefineOptions r = default_refine_options(s.pd);
    run("paper: +1%/iter from iter 5", r);
  }
  {
    RefineOptions r = default_refine_options(s.pd);
    r.lambda_growth = 0.0;
    run("constant lambdas", r);
  }
  {
    RefineOptions r = default_refine_options(s.pd);
    r.lambda_growth = 0.05;
    run("aggressive +5%/iter", r);
  }
  {
    RefineOptions r = default_refine_options(s.pd);
    r.weights.lambda_w = -2.0;
    r.weights.lambda_t = -200.0;
    run("swapped weights (TNS-heavy)", r);
  }
  {
    RefineOptions r = default_refine_options(s.pd);
    r.weights.lambda_t = 0.0;
    run("WNS only (lambda_t = 0)", r);
  }
  t.print();
  return 0;
}
