// Table III: sign-off arrival-time prediction R^2 per design, on all pins
// ('arrival-all') and endpoints only ('arrival-ends'), with train/test
// averages. Paper averages: arrival-all 0.9959 train / 0.9280 test;
// arrival-ends 0.9974 train / 0.8871 test.
#include "bench_common.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  SuiteOptions opts = default_suite_options();
  std::printf("== Table III: sign-off timing prediction (scale %.2f, %d epochs) ==\n\n",
              opts.scale, opts.train.epochs);
  TrainedSuite suite = build_and_train_suite(opts);

  TrainOptions topt = opts.train;
  Trainer trainer(suite.model.get(), topt);  // reuse trained weights for eval

  Table t({"Benchmark", "split", "arrival-all", "arrival-ends"});
  double sum_all_train = 0, sum_all_test = 0, sum_ends_train = 0, sum_ends_test = 0;
  int n_train = 0, n_test = 0;
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    const PreparedDesign& pd = suite.designs[i];
    const EvalMetrics m = trainer.evaluate(suite.base_samples[i]);
    t.add_row({pd.spec.name, pd.spec.is_training ? "train" : "test", fmt(m.r2_all, 4),
               fmt(m.r2_ends, 4)});
    if (pd.spec.is_training) {
      sum_all_train += m.r2_all;
      sum_ends_train += m.r2_ends;
      ++n_train;
    } else {
      sum_all_test += m.r2_all;
      sum_ends_test += m.r2_ends;
      ++n_test;
    }
  }
  t.print();
  std::printf("\nAvg Train: arrival-all %.4f  arrival-ends %.4f   (paper 0.9959 / 0.9974)\n",
              sum_all_train / std::max(1, n_train), sum_ends_train / std::max(1, n_train));
  std::printf("Avg Test:  arrival-all %.4f  arrival-ends %.4f   (paper 0.9280 / 0.8871)\n",
              sum_all_test / std::max(1, n_test), sum_ends_test / std::max(1, n_test));
  return 0;
}
