// Ablation: LSE smoothing temperature gamma (Eq. 5). gamma -> 0 recovers the
// hard max/min (gradient reaches only the single worst path — the "cut-off"
// the paper smooths away); large gamma spreads the gradient across all
// endpoints. The paper uses gamma = 10.
#include "bench_common.hpp"

using namespace tsteiner;
using namespace tsteiner::bench;

int main() {
  const double scale = env_scale(0.25);
  std::printf("== Ablation: LSE gamma sweep on des (scale %.2f) ==\n\n", scale);
  SingleDesignSetup s = prepare_single("des", scale, env_epochs(30), 3);
  const FlowResult base = s.pd.flow->run_signoff(s.pd.flow->initial_forest());
  std::printf("baseline: WNS %.3f TNS %.1f\n\n", base.metrics.wns_ns, base.metrics.tns_ns);

  Table t({"gamma/clock", "iters", "signoff WNS", "signoff TNS", "WNS ratio", "TNS ratio"});
  for (const double gamma : {0.001, 0.1, 0.5, 2.0}) {
    RefineOptions ropts = default_refine_options(s.pd);
    ropts.weights.gamma_relative = gamma;
    const RefineResult refined =
        refine_steiner_points(*s.pd.design, s.pd.flow->initial_forest(), *s.model, ropts);
    const FlowResult opt = s.pd.flow->run_signoff(refined.forest);
    t.add_row({fmt(gamma, 2), Table::num(static_cast<long long>(refined.iterations)),
               fmt(opt.metrics.wns_ns), fmt(opt.metrics.tns_ns, 1),
               fmt(ratio(opt.metrics.wns_ns, base.metrics.wns_ns), 4),
               fmt(ratio(opt.metrics.tns_ns, base.metrics.tns_ns), 4)});
  }
  t.print();
  std::printf("\nexpected shape: very small gamma (hard max) optimizes only the worst "
              "path; moderate gamma (paper: 10) balances all violating endpoints\n");
  return 0;
}
